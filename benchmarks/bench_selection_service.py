"""Selection-service throughput: sequential requests vs. micro-batching.

The serving subsystem's claim is that coalescing concurrent selection
requests into one vectorized predictor pass amortises the per-call model
overhead: a batch of B requests scores a (B x candidates) feature matrix with
the same number of model invocations as a single request.  This benchmark
trains a small EASE system, then measures requests/sec of the
:class:`~repro.serving.service.SelectionService`:

* **sequential** — one thread, unstarted service (inline execution, batch
  size 1 per request);
* **micro-batched** — the batching worker running, swept over client
  concurrency levels; every client thread issues blocking requests in a
  closed loop.

Batched and sequential answers are asserted identical (same selected
partitioner per request), and the full run asserts micro-batched throughput
>= MIN_BATCHED_SPEEDUP x the sequential baseline at concurrency >= 8.

A second benchmark drives the *whole* serving stack — prefork HTTP workers,
request core, admission gate — with a **multi-process load generator** and
asserts operational SLOs rather than throughput geomeans:

* **capacity phase**: N generator processes against a 2-worker prefork
  server with no admission limit; every request must succeed and the p50 /
  p99 request latencies must meet the SLO bounds;
* **overload phase**: the same generators against a deliberately starved
  server (``--max-inflight 1``, slow batcher, result cache defeated), which
  must shed deterministically: 429 responses observed, every one carrying
  ``Retry-After``, successes still completing, and the shed counter visible
  on ``/healthz``.

Runs both as a pytest benchmark and as a script; ``--quick`` is the CI smoke
mode (tiny model, equality + SLO-shape assertions with relaxed bounds).
"""

import argparse
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if __package__ is None or __package__ == "":
    import os

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _harness import cached, report_table
from repro.generators import generate_rmat
from repro.ease import EASE, GraphProfiler
from repro.graph import compute_properties
from repro.serving import SelectionService

PARTITIONERS = ("2d", "1dd", "dbh", "hdrf", "2ps")
CONCURRENCY_SWEEP = (1, 2, 4, 8, 16, 32)
REQUESTS_PER_LEVEL = 240
#: Best-of repeats per level, the same noise control as the other
#: throughput benches (thread scheduling jitter swings single runs by
#: tens of percent).
REPEATS = 3
MIN_BATCHED_SPEEDUP = 3.0
ASSERTED_CONCURRENCY = 8

QUICK_CONCURRENCY_SWEEP = (1, 4)
QUICK_REQUESTS_PER_LEVEL = 24

# Load-generator settings: (processes, requests per process) and the p50/p99
# latency SLOs of the capacity phase.  Full-run bounds are loopback-generous
# (selection is a sub-ms model query; the bound catches order-of-magnitude
# regressions like a lost micro-batcher or an accept stall, not jitter);
# quick mode relaxes them further for loaded CI machines.
LOAD_PROCESSES = 4
LOAD_REQUESTS_PER_PROCESS = 50
P50_SLO_SECONDS = 0.5
P99_SLO_SECONDS = 2.5
QUICK_LOAD_PROCESSES = 3
QUICK_LOAD_REQUESTS_PER_PROCESS = 15
QUICK_P50_SLO_SECONDS = 2.0
QUICK_P99_SLO_SECONDS = 10.0


def _train_system(num_graphs: int = 4):
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(num_graphs)]
    dataset = profiler.profile(graphs, graphs)
    return EASE(partitioner_names=PARTITIONERS).train(dataset)


def _request_grid(num_requests: int):
    """(properties, k) job mix over a handful of query graphs."""
    graphs = [generate_rmat(128, 800 + 120 * s, seed=30 + s)
              for s in range(4)]
    properties = [compute_properties(g, exact_triangles=False)
                  for g in graphs]
    return [(properties[i % len(properties)], 2 + (i % 3))
            for i in range(num_requests)]


def _run_closed_loop(service, jobs, concurrency: int):
    """Run ``jobs`` through ``service.select`` from ``concurrency`` threads."""
    results = [None] * len(jobs)
    barrier = threading.Barrier(concurrency + 1)

    def worker(offset: int) -> None:
        barrier.wait()
        for index in range(offset, len(jobs), concurrency):
            properties, k = jobs[index]
            results[index] = service.select(properties, "pagerank", k)

    threads = [threading.Thread(target=worker, args=(offset,))
               for offset in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return results, elapsed


def _best_of(service_factory, jobs, concurrency: int, repeats: int,
             expected=None, start_worker: bool = True):
    """Best requests/sec over ``repeats`` runs (plus mean batch size)."""
    best_rps = 0.0
    mean_batch = 0.0
    results = None
    for _ in range(repeats):
        service = service_factory()
        if start_worker:
            service.start()
        try:
            results, elapsed = _run_closed_loop(service, jobs, concurrency)
        finally:
            service.stop()
        if expected is not None:
            for result, reference in zip(results, expected):
                if result.selected != reference.selected:
                    raise AssertionError(
                        "micro-batched selection differs from single-request "
                        f"serving: {result.selected!r} != "
                        f"{reference.selected!r}")
        if len(jobs) / elapsed > best_rps:
            best_rps = len(jobs) / elapsed
            mean_batch = service.stats.mean_batch_size()
    return best_rps, mean_batch, results


def run_benchmark(concurrency_sweep, requests_per_level: int,
                  check_speedup: bool = True, repeats: int = REPEATS):
    system = cached("selection_service_model", _train_system)
    jobs = _request_grid(requests_per_level)

    def unbatched():
        # Single-request serving: same worker/queue/future machinery, but
        # every request is its own predictor pass (batch size capped at 1).
        return SelectionService(system, max_batch_size=1)

    def batched():
        return SelectionService(system, max_batch_size=64,
                                batch_wait_seconds=0.002)

    # One-thread inline reference (no worker at all), for context.
    inline_rps, _, reference = _best_of(
        lambda: SelectionService(system), jobs, concurrency=1,
        repeats=repeats, start_worker=False)
    rows = [("inline sequential", 1, len(jobs), inline_rps, inline_rps,
             "1.00x", 1.0)]

    speedup_at = {}
    for concurrency in concurrency_sweep:
        single_rps, _, _ = _best_of(unbatched, jobs, concurrency, repeats,
                                    expected=reference)
        batch_rps, mean_batch, _ = _best_of(batched, jobs, concurrency,
                                            repeats, expected=reference)
        speedup = batch_rps / single_rps
        speedup_at[concurrency] = speedup
        rows.append((f"c={concurrency}", concurrency, len(jobs), single_rps,
                     batch_rps, f"{speedup:.2f}x", mean_batch))

    best = max((speedup_at[c] for c in speedup_at
                if c >= ASSERTED_CONCURRENCY), default=None)
    report_table(
        "selection_service_throughput",
        ("mode", "clients", "requests", "single req/s", "batched req/s",
         "speedup", "mean batch"),
        rows,
        title=f"Selection-service throughput: {len(PARTITIONERS)} candidate "
              f"partitioners, {requests_per_level} requests per level, "
              "best of "
              f"{repeats}; single-request = same service with batching "
              "disabled (max_batch_size=1); identical selections asserted "
              "per request",
        gates=[("batched_speedup_floor",
                not check_speedup
                or (best is not None and best >= MIN_BATCHED_SPEEDUP),
                f"best={best if best is None else f'{best:.2f}x'} "
                f"floor={MIN_BATCHED_SPEEDUP}x at concurrency >= "
                f"{ASSERTED_CONCURRENCY}")])

    if check_speedup:
        assert best >= MIN_BATCHED_SPEEDUP, (
            f"micro-batched speedup {best:.2f}x at concurrency >= "
            f"{ASSERTED_CONCURRENCY} below {MIN_BATCHED_SPEEDUP}x")
    return speedup_at


# --------------------------------------------------------------------------- #
# Multi-process load generation against the full serving stack
# --------------------------------------------------------------------------- #
def _serve_subprocess(bundle_path: str, extra_args):
    """Launch ``repro serve`` on a free port; returns (process, url)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--model", bundle_path,
         "--port", "0"] + list(extra_args),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    url = [None]

    def find_url():
        for line in process.stdout:
            if " on http://" in line:
                url[0] = line.rsplit(" on ", 1)[1].strip()
                return

    reader = threading.Thread(target=find_url, daemon=True)
    reader.start()
    reader.join(timeout=60)
    if not url[0]:
        process.kill()
        process.wait()
        raise AssertionError("serve subprocess never announced its URL")
    return process, url[0]


def _stop_subprocess(process) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()


def _load_worker(url: str, payloads, out_queue) -> None:
    """One generator process: POST every payload, record per-request
    (status, latency_seconds, has_retry_after)."""
    samples = []
    for payload in payloads:
        data = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{url}/v1/select", data=data,
            headers={"Content-Type": "application/json"})
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                response.read()
                status = response.status
                has_retry_after = False
        except urllib.error.HTTPError as error:
            error.read()
            status = error.code
            has_retry_after = error.headers.get("Retry-After") is not None
        samples.append((status, time.perf_counter() - start,
                        has_retry_after))
    out_queue.put(samples)


def _run_load(url: str, processes: int, requests_per_process: int,
              unique_jobs: bool):
    """Fan ``processes`` generator processes at ``url``; returns samples.

    ``unique_jobs`` gives every request a distinct ``num_iterations`` so the
    service's result cache cannot absorb the load (the overload phase must
    hit the admission gate, not the cache).
    """
    properties = _request_grid(1)[0][0].as_dict()
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    out_queue = context.Queue()
    workers = []
    for rank in range(processes):
        payloads = []
        for index in range(requests_per_process):
            payload = {"properties": properties, "algorithm": "pagerank",
                       "num_partitions": 2 + (index % 3),
                       "goal": "end_to_end"}
            if unique_jobs:
                payload["num_iterations"] = \
                    1 + rank * requests_per_process + index
            payloads.append(payload)
        workers.append(context.Process(target=_load_worker,
                                       args=(url, payloads, out_queue)))
    for worker in workers:
        worker.start()
    samples = []
    for _ in workers:
        samples.extend(out_queue.get(timeout=300))
    for worker in workers:
        worker.join(timeout=60)
    return samples


def _percentile(sorted_values, fraction: float) -> float:
    return sorted_values[min(len(sorted_values) - 1,
                             int(fraction * len(sorted_values)))]


def _healthz(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/healthz", timeout=30) as response:
        return json.loads(response.read())


def _scrape_metrics(url: str) -> str:
    with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
        content_type = response.headers.get("Content-Type", "")
        assert content_type.startswith("text/plain"), content_type
        return response.read().decode("utf-8")


def _metric_sum(exposition: str, name: str) -> float:
    """Sum of every sample of ``name`` across label sets (pool-merged)."""
    import re

    pattern = re.compile(rf"^{re.escape(name)}(?:\{{[^}}]*\}})? (\S+)$")
    values = [float(match.group(1))
              for line in exposition.splitlines()
              if (match := pattern.match(line))]
    assert values, f"metric {name} absent from the /metrics exposition"
    return sum(values)


def run_load_benchmark(processes: int, requests_per_process: int,
                       p50_slo: float, p99_slo: float):
    """Capacity + overload phases against the prefork serving stack."""
    system = cached("selection_service_model", _train_system)
    from repro.ease.persistence import save_ease

    fd, bundle = tempfile.mkstemp(suffix=".pkl")
    os.close(fd)
    rows = []
    try:
        save_ease(system, bundle)

        # ---- capacity: 2 prefork workers, no admission limit ---------- #
        process, url = _serve_subprocess(
            bundle, ["--workers", "2", "--batch-wait-ms", "1"])
        try:
            samples = _run_load(url, processes, requests_per_process,
                                unique_jobs=False)
            # Scrape while the pool is still up: whichever worker answers
            # must merge its siblings' metric slots into one exposition.
            exposition = _scrape_metrics(url)
        finally:
            _stop_subprocess(process)
        statuses = [status for status, _, _ in samples]
        latencies = sorted(latency for _, latency, _ in samples)
        p50 = _percentile(latencies, 0.50)
        p99 = _percentile(latencies, 0.99)
        rows.append(("capacity", processes * requests_per_process,
                     statuses.count(200), statuses.count(429), p50, p99))
        assert statuses.count(200) == len(statuses), (
            f"capacity phase had non-200 responses: "
            f"{sorted(set(statuses))}")
        assert p50 <= p50_slo, f"p50 {p50:.3f}s over SLO {p50_slo}s"
        assert p99 <= p99_slo, f"p99 {p99:.3f}s over SLO {p99_slo}s"
        # The serving-phase histograms must be populated and aggregated
        # over the whole pool: one worker's scrape accounts for every
        # generator request, not just its own share.
        import re as _re

        total = processes * requests_per_process
        pids = set(_re.findall(r'pid="(\d+)"', exposition))
        assert len(pids) >= 2, (
            f"merged exposition covers {len(pids)} worker pid(s); "
            "expected the whole 2-worker pool")
        assert _metric_sum(exposition, "serving_requests_total") >= total
        assert _metric_sum(exposition,
                           "serving_request_seconds_count") >= total
        assert _metric_sum(exposition,
                           "serving_admission_wait_seconds_count") >= total
        assert _metric_sum(exposition,
                           "serving_batch_queue_wait_seconds_count") >= 1
        assert _metric_sum(exposition, "serving_inference_seconds_count") >= 1

        # ---- overload: 1 starved worker, 1-slot admission gate -------- #
        process, url = _serve_subprocess(
            bundle, ["--workers", "1", "--max-inflight", "1",
                     "--batch-wait-ms", "50"])
        try:
            samples = _run_load(url, processes, requests_per_process,
                                unique_jobs=True)
            health = _healthz(url)
        finally:
            _stop_subprocess(process)
        statuses = [status for status, _, _ in samples]
        shed = [(status, has_retry) for status, _, has_retry in samples
                if status == 429]
        latencies = sorted(latency for _, latency, _ in samples)
        rows.append(("overload", processes * requests_per_process,
                     statuses.count(200), len(shed),
                     _percentile(latencies, 0.50),
                     _percentile(latencies, 0.99)))
        assert set(statuses) <= {200, 429}, (
            f"overload produced unexpected statuses {sorted(set(statuses))}")
        assert statuses.count(200) >= 1, "overload starved every request"
        assert shed, ("a 1-slot admission gate under "
                      f"{processes} generator processes shed nothing")
        assert all(has_retry for _, has_retry in shed), \
            "a 429 response was missing its Retry-After header"
        assert health["admission"]["shed_total"] >= len(shed) / 2, (
            "/healthz shed counter does not reflect the observed sheds: "
            f"{health['admission']}")
    finally:
        os.remove(bundle)

    report_table(
        "selection_service_load",
        ("phase", "requests", "200s", "429s", "p50 (s)", "p99 (s)"),
        rows,
        title=f"Serving-stack load generation: {processes} generator "
              f"processes x {requests_per_process} requests; capacity = 2 "
              f"prefork workers (SLO p50 <= {p50_slo}s, p99 <= {p99_slo}s, "
              "zero sheds allowed; /metrics scraped under load and asserted "
              "pool-aggregated); overload = 1 worker with a 1-slot "
              "admission gate (sheds required, Retry-After asserted on "
              "every 429)",
        gates=[("capacity_p50_slo", rows[0][4] <= p50_slo,
                f"p50={rows[0][4]:.3f}s slo={p50_slo}s"),
               ("capacity_p99_slo", rows[0][5] <= p99_slo,
                f"p99={rows[0][5]:.3f}s slo={p99_slo}s"),
               ("overload_sheds_observed", rows[1][3] > 0,
                f"429s={rows[1][3]}")])


if pytest is not None:
    @pytest.mark.benchmark(group="selection_service")
    def test_selection_service_throughput(benchmark):
        speedup_at = benchmark.pedantic(
            run_benchmark, args=(CONCURRENCY_SWEEP, REQUESTS_PER_LEVEL),
            rounds=1, iterations=1)
        assert max(speedup_at[c] for c in speedup_at
                   if c >= ASSERTED_CONCURRENCY) >= MIN_BATCHED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: tiny model, equality assertions "
                             "only (no timing thresholds)")
    args = parser.parse_args(argv)
    if args.quick:
        run_benchmark(QUICK_CONCURRENCY_SWEEP, QUICK_REQUESTS_PER_LEVEL,
                      check_speedup=False, repeats=1)
        run_load_benchmark(QUICK_LOAD_PROCESSES,
                           QUICK_LOAD_REQUESTS_PER_PROCESS,
                           QUICK_P50_SLO_SECONDS, QUICK_P99_SLO_SECONDS)
        print("quick smoke passed: micro-batched selections identical to "
              "sequential; load-generator SLOs, pool-aggregated /metrics "
              "and 429 shedding asserted")
    else:
        run_benchmark(CONCURRENCY_SWEEP, REQUESTS_PER_LEVEL)
        run_load_benchmark(LOAD_PROCESSES, LOAD_REQUESTS_PER_PROCESS,
                           P50_SLO_SECONDS, P99_SLO_SECONDS)
    return 0


if __name__ == "__main__":
    sys.exit(main())
