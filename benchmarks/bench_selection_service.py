"""Selection-service throughput: sequential requests vs. micro-batching.

The serving subsystem's claim is that coalescing concurrent selection
requests into one vectorized predictor pass amortises the per-call model
overhead: a batch of B requests scores a (B x candidates) feature matrix with
the same number of model invocations as a single request.  This benchmark
trains a small EASE system, then measures requests/sec of the
:class:`~repro.serving.service.SelectionService`:

* **sequential** — one thread, unstarted service (inline execution, batch
  size 1 per request);
* **micro-batched** — the batching worker running, swept over client
  concurrency levels; every client thread issues blocking requests in a
  closed loop.

Batched and sequential answers are asserted identical (same selected
partitioner per request), and the full run asserts micro-batched throughput
>= MIN_BATCHED_SPEEDUP x the sequential baseline at concurrency >= 8.

Runs both as a pytest benchmark and as a script; ``--quick`` is the CI smoke
mode (tiny model, equality assertions only, no timing thresholds).
"""

import argparse
import sys
import threading
import time

try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if __package__ is None or __package__ == "":
    import os

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _harness import cached, format_table, report
from repro.generators import generate_rmat
from repro.ease import EASE, GraphProfiler
from repro.graph import compute_properties
from repro.serving import SelectionService

PARTITIONERS = ("2d", "1dd", "dbh", "hdrf", "2ps")
CONCURRENCY_SWEEP = (1, 2, 4, 8, 16, 32)
REQUESTS_PER_LEVEL = 240
#: Best-of repeats per level, the same noise control as the other
#: throughput benches (thread scheduling jitter swings single runs by
#: tens of percent).
REPEATS = 3
MIN_BATCHED_SPEEDUP = 3.0
ASSERTED_CONCURRENCY = 8

QUICK_CONCURRENCY_SWEEP = (1, 4)
QUICK_REQUESTS_PER_LEVEL = 24


def _train_system(num_graphs: int = 4):
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(num_graphs)]
    dataset = profiler.profile(graphs, graphs)
    return EASE(partitioner_names=PARTITIONERS).train(dataset)


def _request_grid(num_requests: int):
    """(properties, k) job mix over a handful of query graphs."""
    graphs = [generate_rmat(128, 800 + 120 * s, seed=30 + s)
              for s in range(4)]
    properties = [compute_properties(g, exact_triangles=False)
                  for g in graphs]
    return [(properties[i % len(properties)], 2 + (i % 3))
            for i in range(num_requests)]


def _run_closed_loop(service, jobs, concurrency: int):
    """Run ``jobs`` through ``service.select`` from ``concurrency`` threads."""
    results = [None] * len(jobs)
    barrier = threading.Barrier(concurrency + 1)

    def worker(offset: int) -> None:
        barrier.wait()
        for index in range(offset, len(jobs), concurrency):
            properties, k = jobs[index]
            results[index] = service.select(properties, "pagerank", k)

    threads = [threading.Thread(target=worker, args=(offset,))
               for offset in range(concurrency)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return results, elapsed


def _best_of(service_factory, jobs, concurrency: int, repeats: int,
             expected=None, start_worker: bool = True):
    """Best requests/sec over ``repeats`` runs (plus mean batch size)."""
    best_rps = 0.0
    mean_batch = 0.0
    results = None
    for _ in range(repeats):
        service = service_factory()
        if start_worker:
            service.start()
        try:
            results, elapsed = _run_closed_loop(service, jobs, concurrency)
        finally:
            service.stop()
        if expected is not None:
            for result, reference in zip(results, expected):
                if result.selected != reference.selected:
                    raise AssertionError(
                        "micro-batched selection differs from single-request "
                        f"serving: {result.selected!r} != "
                        f"{reference.selected!r}")
        if len(jobs) / elapsed > best_rps:
            best_rps = len(jobs) / elapsed
            mean_batch = service.stats.mean_batch_size()
    return best_rps, mean_batch, results


def run_benchmark(concurrency_sweep, requests_per_level: int,
                  check_speedup: bool = True, repeats: int = REPEATS):
    system = cached("selection_service_model", _train_system)
    jobs = _request_grid(requests_per_level)

    def unbatched():
        # Single-request serving: same worker/queue/future machinery, but
        # every request is its own predictor pass (batch size capped at 1).
        return SelectionService(system, max_batch_size=1)

    def batched():
        return SelectionService(system, max_batch_size=64,
                                batch_wait_seconds=0.002)

    # One-thread inline reference (no worker at all), for context.
    inline_rps, _, reference = _best_of(
        lambda: SelectionService(system), jobs, concurrency=1,
        repeats=repeats, start_worker=False)
    rows = [("inline sequential", 1, len(jobs), inline_rps, inline_rps,
             "1.00x", 1.0)]

    speedup_at = {}
    for concurrency in concurrency_sweep:
        single_rps, _, _ = _best_of(unbatched, jobs, concurrency, repeats,
                                    expected=reference)
        batch_rps, mean_batch, _ = _best_of(batched, jobs, concurrency,
                                            repeats, expected=reference)
        speedup = batch_rps / single_rps
        speedup_at[concurrency] = speedup
        rows.append((f"c={concurrency}", concurrency, len(jobs), single_rps,
                     batch_rps, f"{speedup:.2f}x", mean_batch))

    table = format_table(
        ("mode", "clients", "requests", "single req/s", "batched req/s",
         "speedup", "mean batch"),
        rows,
        title=f"Selection-service throughput: {len(PARTITIONERS)} candidate "
              f"partitioners, {requests_per_level} requests per level, "
              "best of "
              f"{repeats}; single-request = same service with batching "
              "disabled (max_batch_size=1); identical selections asserted "
              "per request")
    report("selection_service_throughput", table)

    if check_speedup:
        best = max(speedup_at[c] for c in speedup_at
                   if c >= ASSERTED_CONCURRENCY)
        assert best >= MIN_BATCHED_SPEEDUP, (
            f"micro-batched speedup {best:.2f}x at concurrency >= "
            f"{ASSERTED_CONCURRENCY} below {MIN_BATCHED_SPEEDUP}x")
    return speedup_at


if pytest is not None:
    @pytest.mark.benchmark(group="selection_service")
    def test_selection_service_throughput(benchmark):
        speedup_at = benchmark.pedantic(
            run_benchmark, args=(CONCURRENCY_SWEEP, REQUESTS_PER_LEVEL),
            rounds=1, iterations=1)
        assert max(speedup_at[c] for c in speedup_at
                   if c >= ASSERTED_CONCURRENCY) >= MIN_BATCHED_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: tiny model, equality assertions "
                             "only (no timing thresholds)")
    args = parser.parse_args(argv)
    if args.quick:
        run_benchmark(QUICK_CONCURRENCY_SWEEP, QUICK_REQUESTS_PER_LEVEL,
                      check_speedup=False, repeats=1)
        print("quick smoke passed: micro-batched selections identical to "
              "sequential")
    else:
        run_benchmark(CONCURRENCY_SWEEP, REQUESTS_PER_LEVEL)
    return 0


if __name__ == "__main__":
    sys.exit(main())
