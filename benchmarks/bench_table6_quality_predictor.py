"""Table VI: PartitioningQualityPredictor accuracy per target metric.

MAPE and RMSE for the replication factor (basic and advanced feature sets) and
the four balance metrics, evaluated on the real-world-like test catalogue
after training on the synthetic R-MAT corpus only.  The paper's headline
observation: the balance metrics are predicted more accurately than the
replication factor.
"""

import numpy as np
import pytest

from _harness import report_table
from repro.ease import PartitioningQualityPredictor


def _evaluate_feature_sets(quality_training_records, test_quality_records):
    results = []

    basic = PartitioningQualityPredictor(feature_set="basic")
    basic.fit(quality_training_records.quality)
    basic_scores = basic.evaluate(test_quality_records.quality)

    advanced = PartitioningQualityPredictor(feature_set="basic",
                                            replication_feature_set="advanced")
    advanced.fit(quality_training_records.quality,
                 targets=["replication_factor"])
    advanced_scores = advanced.evaluate(test_quality_records.quality)

    results.append(("replication_factor", "XGB-like", "basic",
                    basic_scores["replication_factor"]["mape"],
                    basic_scores["replication_factor"]["rmse"]))
    results.append(("replication_factor", "XGB-like", "advanced",
                    advanced_scores["replication_factor"]["mape"],
                    advanced_scores["replication_factor"]["rmse"]))
    for metric in ("vertex_balance", "source_balance", "edge_balance",
                   "destination_balance"):
        results.append((metric, "RFR", "basic", basic_scores[metric]["mape"],
                        basic_scores[metric]["rmse"]))
    return results, basic


def test_table6_quality_predictor(benchmark, quality_training_records,
                                  test_quality_records):
    rows, predictor = benchmark.pedantic(
        _evaluate_feature_sets,
        args=(quality_training_records, test_quality_records),
        rounds=1, iterations=1)
    report_table("table6_quality_predictor",
        ("target", "model", "features", "MAPE", "RMSE"), rows,
        title="Table VI: PartitioningQualityPredictor on the real-world-like "
              "test set (trained on synthetic R-MAT only)")

    scores = {(row[0], row[2]): row[3] for row in rows}
    balance_mapes = [scores[("vertex_balance", "basic")],
                     scores[("source_balance", "basic")],
                     scores[("edge_balance", "basic")],
                     scores[("destination_balance", "basic")]]
    rf_mape = scores[("replication_factor", "basic")]
    # Paper shape: balancing metrics are predicted more accurately than the
    # replication factor (Table VI), and nothing degenerates.
    assert np.mean(balance_mapes) < rf_mape + 0.05
    assert rf_mape < 1.0
    assert all(value < 0.8 for value in balance_mapes)
