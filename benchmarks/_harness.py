"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation at laptop scale (the file names index the experiments).  The
heavy, shared work — generating the training corpora, profiling them with all
partitioners and workloads, and training EASE — is done once per benchmark
session in :mod:`benchmarks.conftest` and cached on disk, so individual
benchmarks only pay for their own evaluation step.

Reported numbers are printed as plain-text tables (the "rows/series" of the
paper) and also appended to ``benchmarks/results/`` so they can be inspected
after the run.
"""

from __future__ import annotations

import os
import pickle
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

RESULTS_DIRECTORY = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIRECTORY = os.path.join(os.path.dirname(__file__), "_cache")


# --------------------------------------------------------------------------- #
# Memory measurement
# --------------------------------------------------------------------------- #
def peak_rss_bytes(children: bool = False) -> int:
    """High-water-mark resident set size via ``getrusage``, in bytes.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; ``children=True``
    reports the peak over all waited-for child processes (one worker's
    peak, not their sum) — the number the memory benchmarks compare.
    """
    import resource

    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    peak = resource.getrusage(who).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return peak


def _child_pids() -> List[int]:
    """PIDs of the direct children of this process (Linux)."""
    pids: List[int] = []
    task_dir = f"/proc/{os.getpid()}/task"
    try:
        for tid in os.listdir(task_dir):
            with open(os.path.join(task_dir, tid, "children"),
                      "r", encoding="ascii") as handle:
                pids.extend(int(pid) for pid in handle.read().split())
        return pids
    except OSError:
        pids.clear()
    try:  # fallback: scan /proc for our PPid
        entries = os.listdir("/proc")
    except OSError:
        return pids
    self_pid = os.getpid()
    for entry in entries:
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "r", encoding="ascii") as handle:
                stat = handle.read()
            ppid = int(stat.rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        if ppid == self_pid:
            pids.append(int(entry))
    return pids


def _pss_bytes(pid: int) -> int:
    try:
        with open(f"/proc/{pid}/smaps_rollup", "r",
                  encoding="ascii") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:  # no smaps_rollup: VmRSS over-counts shared pages, never under
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def children_pss_bytes() -> int:
    """Aggregate proportional set size of this process's children, in bytes.

    PSS charges each resident page ``1/sharers``, so a memory-mapped file
    held by N pool workers counts *once* in the sum while N private
    (unpickled) copies count N times — the footprint metric the zero-copy
    benchmarks gate on.  Children that exit between enumeration and reading
    contribute 0.  Linux-only; returns 0 where /proc is unavailable.
    """
    return sum(_pss_bytes(pid) for pid in _child_pids())


def current_rss_bytes() -> int:
    """Resident set size of this process right now, in bytes.

    Reads ``/proc/self/status`` (Linux); falls back to the getrusage peak
    where /proc is unavailable, which only ever over-reports.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return peak_rss_bytes()


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #
def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [max(len(str(header)), *(len(row[i]) for row in rows)) if rows
              else len(str(header))
              for i, header in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under ``benchmarks/results``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIRECTORY, exist_ok=True)
    path = os.path.join(RESULTS_DIRECTORY, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def _json_cell(cell):
    """A table cell as a JSON-serialisable value (numpy scalars unboxed)."""
    if isinstance(cell, (np.integer,)):
        return int(cell)
    if isinstance(cell, (np.floating,)):
        return float(cell)
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)


def report_table(name: str, headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "", gates: Optional[Sequence] = None,
                 notes: str = "") -> None:
    """Report one result table as text *and* machine-readable JSON.

    The text rendering goes through :func:`report` (stdout +
    ``results/<name>.txt``, unchanged format); alongside it,
    ``results/BENCH_<name>.json`` records the headers, the raw rows and the
    gate verdicts so downstream tooling never parses the fixed-width table.

    ``gates`` is a sequence of ``(gate_name, passed, detail)`` triples —
    record the verdicts *before* asserting them so a failing run still
    leaves its JSON behind.  ``notes`` is free-form text appended to the
    text report and carried verbatim in the JSON.
    """
    import json

    rows = [list(row) for row in rows]
    gate_records = [{"name": gate_name, "passed": bool(passed),
                     "detail": str(detail)}
                    for gate_name, passed, detail in (gates or ())]
    text = format_table(headers, rows, title=title)
    if gate_records:
        text += "\n" + "\n".join(
            f"gate {record['name']}: "
            f"{'PASS' if record['passed'] else 'FAIL'}  ({record['detail']})"
            for record in gate_records)
    if notes:
        text += "\n" + notes
    report(name, text)
    payload = {
        "benchmark": name,
        "title": title,
        "headers": list(headers),
        "rows": [[_json_cell(cell) for cell in row] for row in rows],
        "gates": gate_records,
        "notes": notes,
    }
    path = os.path.join(RESULTS_DIRECTORY, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# --------------------------------------------------------------------------- #
# Disk cache for the expensive shared fixtures
# --------------------------------------------------------------------------- #
def cached(key: str, builder):
    """Build-or-load a pickled artefact keyed by ``key``.

    The cache keeps benchmark re-runs fast; delete ``benchmarks/_cache`` to
    force a rebuild (e.g. after changing profiling settings).
    """
    os.makedirs(CACHE_DIRECTORY, exist_ok=True)
    path = os.path.join(CACHE_DIRECTORY, f"{key}.pkl")
    if os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            os.remove(path)
    artefact = builder()
    with open(path, "wb") as handle:
        pickle.dump(artefact, handle)
    return artefact
