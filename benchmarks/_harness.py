"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation at laptop scale (the file names index the experiments).  The
heavy, shared work — generating the training corpora, profiling them with all
partitioners and workloads, and training EASE — is done once per benchmark
session in :mod:`benchmarks.conftest` and cached on disk, so individual
benchmarks only pay for their own evaluation step.

Reported numbers are printed as plain-text tables (the "rows/series" of the
paper) and also appended to ``benchmarks/results/`` so they can be inspected
after the run.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

RESULTS_DIRECTORY = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIRECTORY = os.path.join(os.path.dirname(__file__), "_cache")


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #
def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [max(len(str(header)), *(len(row[i]) for row in rows)) if rows
              else len(str(header))
              for i, header in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under ``benchmarks/results``."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    os.makedirs(RESULTS_DIRECTORY, exist_ok=True)
    path = os.path.join(RESULTS_DIRECTORY, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


# --------------------------------------------------------------------------- #
# Disk cache for the expensive shared fixtures
# --------------------------------------------------------------------------- #
def cached(key: str, builder):
    """Build-or-load a pickled artefact keyed by ``key``.

    The cache keeps benchmark re-runs fast; delete ``benchmarks/_cache`` to
    force a rebuild (e.g. after changing profiling settings).
    """
    os.makedirs(CACHE_DIRECTORY, exist_ok=True)
    path = os.path.join(CACHE_DIRECTORY, f"{key}.pkl")
    if os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            os.remove(path)
    artefact = builder()
    with open(path, "wb") as handle:
        pickle.dump(artefact, handle)
    return artefact
