"""Session-scoped fixtures shared by the benchmark harness.

The benchmarks regenerate every table and figure of the paper's evaluation at
laptop scale.  They share one training/profiling pass (the expensive part),
which is built here once per session and cached on disk under
``benchmarks/_cache`` — delete that directory to force a rebuild.
"""

from __future__ import annotations

import sys
import os

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _harness import cached  # noqa: E402

from repro.generators import (  # noqa: E402
    generate_large_test_graphs,
    generate_realworld_graph,
    generate_test_catalogue,
    generate_training_corpus,
    rmat_small_grid,
    rmat_large_grid,
)
from repro.ease import EASE, GraphProfiler  # noqa: E402

#: Scale factors: Table I grids scaled so the largest graphs have a few
#: thousand edges (laptop scale).
SMALL_GRID_SCALE = 1.0 / 50_000
LARGE_GRID_SCALE = 1.0 / 60_000
#: Subsampling steps applied to the 297-/180-cell grids so the shared
#: profiling pass stays in the minutes range.
SMALL_GRID_STEP = 8
LARGE_GRID_STEP = 6

#: Per-type composition of the laptop-scale test catalogue (the paper's
#: proportions, reduced).
TEST_CATALOGUE_COUNTS = {
    "affiliation": 2, "citation": 1, "collaboration": 2, "interaction": 2,
    "internet": 2, "product_network": 1, "soc": 4, "web": 3, "wiki": 6,
}

PARTITION_COUNTS = (4, 8)
PROCESSING_K = 4


def _profiler() -> GraphProfiler:
    return GraphProfiler(partition_counts=PARTITION_COUNTS,
                         processing_partition_count=PROCESSING_K)


@pytest.fixture(scope="session")
def profiler():
    return _profiler()


@pytest.fixture(scope="session")
def small_training_graphs():
    """Scaled, subsampled R-MAT-SMALL corpus (Table I(a) x Table II)."""
    def build():
        specs = rmat_small_grid(scale=SMALL_GRID_SCALE)[::SMALL_GRID_STEP]
        return list(generate_training_corpus(specs, seed=1))
    return cached("small_training_graphs", build)


@pytest.fixture(scope="session")
def large_training_graphs():
    """Scaled, subsampled R-MAT-LARGE corpus (Table I(b) x Table II)."""
    def build():
        specs = rmat_large_grid(scale=LARGE_GRID_SCALE)[::LARGE_GRID_STEP]
        return list(generate_training_corpus(specs, seed=2))
    return cached("large_training_graphs", build)


@pytest.fixture(scope="session")
def quality_training_records(small_training_graphs):
    """Quality + partitioning-time records of the R-MAT-SMALL corpus."""
    return cached("quality_training_records",
                  lambda: _profiler().profile_quality(small_training_graphs))


@pytest.fixture(scope="session")
def runtime_training_records(large_training_graphs):
    """Processing + run-time records of the R-MAT-LARGE corpus."""
    return cached("runtime_training_records",
                  lambda: _profiler().profile_processing(large_training_graphs))


@pytest.fixture(scope="session")
def test_catalogue():
    """Real-world-like test graphs (the paper's 9 graph types)."""
    def build():
        return generate_test_catalogue(graphs_per_type=TEST_CATALOGUE_COUNTS,
                                       base_vertices=600, base_edges=3600,
                                       seed=7)
    return cached("test_catalogue", build)


@pytest.fixture(scope="session")
def test_quality_records(test_catalogue):
    """Quality records of the test catalogue (ground truth for Table VI/Fig 7)."""
    return cached("test_quality_records",
                  lambda: _profiler().profile_quality(test_catalogue))


@pytest.fixture(scope="session")
def wiki_enrichment_records():
    """Quality records of the wiki enrichment pool (Section V-D)."""
    def build():
        graphs = [generate_realworld_graph("wiki", 400 + 35 * index,
                                           2600 + 260 * index,
                                           seed=1000 + index)
                  for index in range(12)]
        return _profiler().profile_quality(graphs)
    return cached("wiki_enrichment_records", build)


@pytest.fixture(scope="session")
def large_test_records():
    """Processing/run-time records of the Table-IV-like evaluation graphs."""
    def build():
        graphs = generate_large_test_graphs(scale=0.18, seed=11)
        return _profiler().profile_processing(graphs)
    return cached("large_test_records", build)


@pytest.fixture(scope="session")
def trained_ease(quality_training_records, runtime_training_records):
    """EASE trained on the synthetic corpora (quality from R-MAT-SMALL,
    run-times from R-MAT-LARGE), as in the paper."""
    def build():
        dataset = quality_training_records
        system = EASE()
        system.quality_predictor.fit(dataset.quality)
        system.partitioning_time_predictor.fit(
            runtime_training_records.partitioning_time)
        system.processing_time_predictor.fit(runtime_training_records.processing)
        from repro.ease import PartitionerSelector

        system._selector = PartitionerSelector(
            system.quality_predictor, system.partitioning_time_predictor,
            system.processing_time_predictor)
        return system
    return cached("trained_ease", build)
