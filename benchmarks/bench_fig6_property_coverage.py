"""Figure 6: training-graph property coverage and the clustering/RF relation.

(a)-(e): distributions (min / median / max) of mean degree, clustering
coefficient, mean triangles and in-/out-degree skewness for R-MAT graphs,
Barabási–Albert graphs and real-world-like graphs — R-MAT covers the
real-world ranges, BA does not.

(f): for a fixed edge count, varying |V| and the Table II parameter
combinations, the clustering coefficient of the graph anti-correlates with
the replication factor HDRF achieves — well-clustered graphs are easier to
partition.
"""

import numpy as np
import pytest

from _harness import report_table
from repro.graph import compute_properties
from repro.generators import (
    TABLE2_PARAMETER_COMBINATIONS,
    generate_barabasi_albert,
    generate_rmat,
)
from repro.partitioning import create_partitioner, replication_factor

PROPERTY_NAMES = ("mean_degree", "mean_local_clustering", "mean_triangles",
                  "in_degree_skewness", "out_degree_skewness")


def _corpus_properties(graphs):
    return [compute_properties(graph, exact_triangles=False, sample_size=400)
            for graph in graphs]


@pytest.fixture(scope="module")
def corpora(small_training_graphs, test_catalogue):
    rmat_graphs = small_training_graphs[::3]
    ba_graphs = [generate_barabasi_albert(1000, m, seed=m) for m in
                 (1, 2, 4, 8, 16, 24)]
    realworld_graphs = test_catalogue
    return {
        "R-MAT": _corpus_properties(rmat_graphs),
        "BA": _corpus_properties(ba_graphs),
        "RW": _corpus_properties(realworld_graphs),
    }


def _coverage_rows(corpora):
    rows = []
    for property_name in PROPERTY_NAMES:
        for corpus_name, props in corpora.items():
            values = np.array([getattr(p, property_name) for p in props])
            rows.append((property_name, corpus_name, values.min(),
                         float(np.median(values)), values.max()))
    return rows


def test_fig6a_to_e_property_coverage(benchmark, corpora):
    rows = benchmark.pedantic(_coverage_rows, args=(corpora,), rounds=1,
                              iterations=1)
    report_table("fig6a_e_property_coverage",
        ("property", "corpus", "min", "median", "max"), rows,
        title="Figure 6(a)-(e): graph-property coverage of R-MAT vs "
              "Barabasi-Albert vs real-world-like graphs")

    def span(property_name, corpus):
        values = [row for row in rows if row[0] == property_name
                  and row[1] == corpus]
        return values[0][2], values[0][4]

    # R-MAT must cover a wide clustering range; BA graphs have essentially no
    # clustering, which is the paper's argument against the BA generator.
    rmat_low, rmat_high = span("mean_local_clustering", "R-MAT")
    ba_low, ba_high = span("mean_local_clustering", "BA")
    assert rmat_high > 0.1
    assert ba_high < rmat_high
    rw_low, rw_high = span("mean_degree", "RW")
    rmat_deg_low, rmat_deg_high = span("mean_degree", "R-MAT")
    assert rmat_deg_high >= rw_high * 0.3


def _clustering_vs_rf_series():
    num_edges = 6000
    series = []
    for num_vertices in (512, 1024, 2048, 4096):
        for combo_index, parameters in enumerate(TABLE2_PARAMETER_COMBINATIONS):
            graph = generate_rmat(num_vertices, num_edges, parameters,
                                  seed=combo_index)
            properties = compute_properties(graph, exact_triangles=False,
                                            sample_size=400)
            partition = create_partitioner("hdrf")(graph, 8)
            series.append((num_vertices, f"C{combo_index + 1}",
                           properties.mean_local_clustering,
                           replication_factor(partition)))
    return series


def test_fig6f_clustering_vs_replication_factor(benchmark):
    series = benchmark.pedantic(_clustering_vs_rf_series, rounds=1, iterations=1)
    report_table("fig6f_clustering_vs_rf",
        ("|V|", "combination", "clustering coefficient", "HDRF replication factor"),
        series,
        title="Figure 6(f): clustering coefficient vs HDRF replication factor "
              "(|E| fixed, varying |V| and Table II parameters)")

    # In Figure 6(f) every line is one vertex count; within a line (i.e. at a
    # fixed density) higher clustering coefficients go along with lower
    # replication factors.  The correlation is therefore evaluated per vertex
    # count, which avoids the cross-density confounder.
    per_vertex_count_correlations = []
    for num_vertices in sorted({row[0] for row in series}):
        rows = [row for row in series if row[0] == num_vertices]
        clustering = np.array([row[2] for row in rows])
        rf = np.array([row[3] for row in rows])
        per_vertex_count_correlations.append(np.corrcoef(clustering, rf)[0, 1])
    assert np.mean(per_vertex_count_correlations) < -0.5
    assert all(value < 0 for value in per_vertex_count_correlations)
