"""Memory-mapped graph store: page-shared workers and O(1) serving cold-start.

The zero-copy claim of the graph store (``repro.graph.store``) is that a
profiling corpus stored as on-disk edge arrays + precomputed CSR views is
*opened*, not loaded: ``np.memmap`` pages fault in on first touch and are
shared through the OS page cache by every process that maps them.  Three
experiments measure what that buys over the in-RAM baseline, which ships
pickled edge arrays to every pool worker:

* **memory footprint** — the same profiling run (process pool) executed
  by a subprocess probe in ``store`` mode (graphs opened from the store)
  and in ``arrays`` mode (graphs materialized in RAM).  The gated metric
  is the *corpus residency of the profiling driver*: the resident-set
  growth of the probe between interpreter start-up and pool fork.  The
  in-RAM driver materializes every edge array, so its residency grows
  with the corpus; the store-backed driver reads only ``meta.json`` per
  graph and stays O(1) no matter how large the corpus is.  The full run
  asserts the store-backed residency is at least ``MIN_RSS_REDUCTION``x
  lower.

  Worker-side memory is *reported* but deliberately not gated, because on
  fork platforms the comparison is confounded twice over: the in-RAM
  corpus is inherited copy-on-write (so the workers' edge arrays are
  page-shared in both modes — only the privately rebuilt CSR views
  differ, and the pool's aggregate PSS sampled at backend close shows
  it), and the per-worker ``getrusage`` high-water mark charges shared
  pages — COW or page-cache — fully to every process, so it cannot see
  either mode's sharing.  Both numbers are in the table: the per-worker
  peak RSS and the pool retained PSS (aggregate proportional set size at
  close, after numpy has returned the transient task buffers).
* **time to first completed task** — pool start-up ships O(1) path
  references instead of the pickled corpus, so the first profiling task
  completes sooner on a cold store-backed pool.
* **serving cold start** — time to the first ``/v1/select`` response for a
  cold large graph: a ``graph_fingerprint`` request against a server with a
  graph store (the graph is opened O(1) server-side) vs. shipping the edge
  arrays through JSON.

Every experiment asserts the store-backed results are identical,
record-for-record, to the in-RAM baseline.  ``--quick`` is the CI smoke
mode: tiny corpus in a temporary store, identity assertions only, no
timing or memory thresholds.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time

try:
    import pytest
except ImportError:  # pragma: no cover - direct CLI invocation
    pytest = None

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import numpy as np

from _harness import (
    CACHE_DIRECTORY,
    cached,
    children_pss_bytes,
    current_rss_bytes,
    peak_rss_bytes,
    report_table,
)
from repro.generators import generate_rmat
from repro.graph import Graph, GraphStore
from repro.ease import EASE, GraphProfiler
from repro.runtime import ProcessPoolBackend, ProfileExecutor, build_dataset

#: Profiling corpus of the memory / first-task experiments.  Sized so the
#: shipped edge arrays dominate the interpreter baseline (~5 MiB of src/dst
#: per graph, ~60 MiB corpus).
NUM_GRAPHS = 12
VERTICES = 30_000
EDGES = 320_000
PARALLEL_JOBS = 8

#: The profiled grid: one streaming partitioner, quality phase only.  The
#: property tasks are the CSR consumers — the store path maps the
#: precomputed undirected view, the array path rebuilds it per worker.
PARTITIONERS = ("dbh",)
PARTITION_COUNTS = (2,)

MIN_RSS_REDUCTION = 2.0
MIN_FIRST_TASK_SPEEDUP = 1.2
MIN_COLD_START_SPEEDUP = 1.2

#: Serving experiment: one large query graph (~16 MiB of edge arrays, a
#: multi-second JSON round trip when shipped inline).
SERVING_VERTICES = 100_000
SERVING_EDGES = 1_000_000
SERVING_PARTITIONERS = ("2d", "dbh", "hdrf")

QUICK_NUM_GRAPHS = 3
QUICK_VERTICES = 160
QUICK_EDGES = 900
QUICK_JOBS = 2
QUICK_SERVING_VERTICES = 200
QUICK_SERVING_EDGES = 1_200


# --------------------------------------------------------------------------- #
# Corpus / store preparation
# --------------------------------------------------------------------------- #
def _corpus(num_graphs: int, vertices: int, edges: int):
    return [generate_rmat(vertices, edges + 977 * index, seed=100 + index,
                          graph_type="rmat")
            for index in range(num_graphs)]


def _ensure_store(directory: str, num_graphs: int, vertices: int,
                  edges: int) -> GraphStore:
    """Idempotently ingest the benchmark corpus into ``directory``."""
    store = GraphStore(directory)
    if len(store.list()) != num_graphs:
        shutil.rmtree(directory, ignore_errors=True)
        store = GraphStore(directory)
        for graph in _corpus(num_graphs, vertices, edges):
            store.save(graph)
    return store


def _materialize(graph: Graph) -> Graph:
    """In-RAM copy of a (possibly mapped) graph — the baseline corpus."""
    return Graph(np.array(graph.src), np.array(graph.dst),
                 num_vertices=graph.num_vertices, name=graph.name,
                 graph_type=graph.graph_type)


def _load_corpus(store: GraphStore, mode: str):
    graphs = store.open_all()
    if mode == "arrays":
        # The mapped sources are dropped as they are copied, so the parent
        # holds exactly one in-RAM corpus — what a .npz loader would hold.
        graphs = [_materialize(graph) for graph in graphs]
    return graphs


def _make_profiler(jobs: int, backend=None) -> GraphProfiler:
    return GraphProfiler(partitioner_names=PARTITIONERS,
                         partition_counts=PARTITION_COUNTS,
                         processing_partition_count=2,
                         algorithms=("pagerank",), jobs=jobs,
                         backend=backend)


def _assert_identical(datasets) -> None:
    for dataset in datasets[1:]:
        assert dataset.summary() == datasets[0].summary()
        for field in ("quality", "partitioning_time", "processing"):
            assert all(lhs == rhs for lhs, rhs in
                       zip(getattr(dataset, field),
                           getattr(datasets[0], field)))


# --------------------------------------------------------------------------- #
# Experiment 1: worker peak RSS (subprocess probe)
# --------------------------------------------------------------------------- #
class _RetainedFootprintBackend(ProcessPoolBackend):
    """Process pool that samples the workers' aggregate PSS at close.

    ``close()`` runs after the scheduler has drained every task: numpy has
    returned the transient task buffers to the OS (large allocations are
    mmap-backed), so the sample is the pool's *retained* footprint — worker
    interpreters plus whatever corpus state the shipping mode left resident.
    """

    def __init__(self, max_workers: int) -> None:
        super().__init__(max_workers)
        self.retained_pss = None

    def close(self):
        if self.retained_pss is None:
            self.retained_pss = children_pss_bytes()
        super().close()


def run_probe(args) -> int:
    """Measurement child: profile the corpus, report memory marks as JSON.

    Runs in a fresh interpreter so the pool workers fork from a parent
    whose resident set holds nothing but this probe's corpus.
    """
    from repro.ease.persistence import save_dataset

    baseline_rss = current_rss_bytes()
    graphs = _load_corpus(GraphStore(args.store_dir), args.probe)
    prefork_rss = current_rss_bytes()
    plan = _make_profiler(jobs=args.jobs).build_plan(graphs, [])
    backend = _RetainedFootprintBackend(args.jobs)
    executor = ProfileExecutor(jobs=args.jobs, backend=backend)
    start = time.perf_counter()
    payloads, _ = executor.run(plan)
    elapsed = time.perf_counter() - start
    dataset = build_dataset(plan, payloads)
    if args.dump:
        save_dataset(dataset, args.dump)
    print(json.dumps({
        "mode": args.probe,
        "baseline_rss": baseline_rss,
        "prefork_rss": prefork_rss,
        "pool_retained_pss": backend.retained_pss,
        "worker_peak_rss": peak_rss_bytes(children=True),
        "parent_peak_rss": peak_rss_bytes(),
        "wall_seconds": elapsed,
        "records": len(dataset.quality) + len(dataset.partitioning_time),
    }))
    return 0


def _launch_probe(mode: str, store_dir: str, jobs: int, dump: str) -> dict:
    env = dict(os.environ)
    import repro

    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else package_root + os.pathsep + existing)
    completed = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--probe", mode,
         "--store-dir", store_dir, "--jobs", str(jobs), "--dump", dump],
        env=env, capture_output=True, text=True, check=False)
    if completed.returncode != 0:
        raise RuntimeError(f"probe {mode!r} failed:\n{completed.stderr}")
    return json.loads(completed.stdout.strip().splitlines()[-1])


def run_worker_rss(store_dir: str, jobs: int):
    """Launch the store and arrays probes; return their reports + datasets."""
    from repro.ease.persistence import load_dataset

    reports, datasets = {}, {}
    dump_dir = tempfile.mkdtemp(prefix="bench-graph-store-")
    try:
        for mode in ("store", "arrays"):
            dump = os.path.join(dump_dir, f"{mode}.pkl")
            reports[mode] = _launch_probe(mode, store_dir, jobs, dump)
            datasets[mode] = load_dataset(dump)
    finally:
        shutil.rmtree(dump_dir, ignore_errors=True)
    _assert_identical([datasets["store"], datasets["arrays"]])
    return reports


def report_worker_rss(reports: dict, jobs: int) -> float:
    residency = {mode: r["prefork_rss"] - r["baseline_rss"]
                 for mode, r in reports.items()}
    reduction = residency["arrays"] / max(residency["store"], 1)
    rows = []
    for mode, r in reports.items():
        rows.append((mode, residency[mode] / 2**20,
                     r["pool_retained_pss"] / 2**20,
                     r["worker_peak_rss"] / 2**20,
                     r["wall_seconds"], r["records"]))
    report_table(
        "graph_store_worker_rss",
        ("corpus", "driver corpus residency (MiB)",
         "pool retained PSS (MiB)", "per-worker peak RSS (MiB)",
         "wall clock (s)", "records"), rows,
        title=f"Memory footprint: {NUM_GRAPHS} R-MAT graphs "
              f"|V|={VERTICES} |E|~{EDGES}, process pool jobs={jobs}; "
              f"gated: driver corpus residency (RSS growth of the "
              f"driving process from interpreter start to pool fork — "
              f"O(1) store-backed, corpus-sized in RAM); worker columns "
              f"reported only, see module docstring (datasets asserted "
              f"identical); reduction {reduction:.2f}x")
    return reduction


# --------------------------------------------------------------------------- #
# Experiment 2: time to first completed task
# --------------------------------------------------------------------------- #
class _FirstCompletionBackend(ProcessPoolBackend):
    """Process pool that timestamps pool start and the first completion."""

    def __init__(self, max_workers: int) -> None:
        super().__init__(max_workers)
        self.started_at = None
        self.first_completed_at = None

    def start(self, graphs, cache_dir, store=None):
        self.started_at = time.perf_counter()
        super().start(graphs, cache_dir, store=store)

    def next_completed(self):
        result = super().next_completed()
        if self.first_completed_at is None:
            self.first_completed_at = time.perf_counter()
        return result


def run_first_task(store: GraphStore, jobs: int):
    """First-completion latency of a cold pool, store-backed vs shipped."""
    outcomes = {}
    for mode in ("store", "arrays"):
        graphs = _load_corpus(store, mode)
        plan = _make_profiler(jobs=jobs).build_plan(graphs, [])
        backend = _FirstCompletionBackend(jobs)
        executor = ProfileExecutor(jobs=jobs, backend=backend)
        start = time.perf_counter()
        payloads, _ = executor.run(plan)
        total = time.perf_counter() - start
        first = backend.first_completed_at - backend.started_at
        outcomes[mode] = (first, total, build_dataset(plan, payloads))
    _assert_identical([outcomes["store"][2], outcomes["arrays"][2]])
    return outcomes


def report_first_task(outcomes: dict, jobs: int) -> float:
    speedup = outcomes["arrays"][0] / outcomes["store"][0]
    rows = [(mode, first, total)
            for mode, (first, total, _) in outcomes.items()]
    report_table(
        "graph_store_first_task",
        ("corpus", "first task (s)", "full run (s)"), rows,
        title=f"Time to first completed task, cold process pool "
              f"(jobs={jobs}): store-backed pools ship O(1) path "
              f"references at start-up; array pools pickle the corpus "
              f"into every worker first ({speedup:.2f}x)")
    return speedup


# --------------------------------------------------------------------------- #
# Experiment 3: serving cold start
# --------------------------------------------------------------------------- #
def _train_serving_system():
    profiler = GraphProfiler(partitioner_names=SERVING_PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * seed, seed=seed,
                            graph_type="rmat")
              for seed in range(4)]
    dataset = profiler.profile(graphs, graphs)
    return EASE(partitioner_names=SERVING_PARTITIONERS).train(dataset)


def _first_response(system, request_graph, graph_store=None):
    """Seconds to the first /v1/select response of a cold server."""
    from repro.serving import (
        SelectionClient,
        SelectionHTTPServer,
        SelectionService,
    )

    service = SelectionService(system, graph_store=graph_store)
    server = SelectionHTTPServer(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    with server:
        thread.start()
        client = SelectionClient(server.url, timeout=300)
        start = time.perf_counter()
        response = client.select(request_graph, "pagerank", 2)
        elapsed = time.perf_counter() - start
        server.shutdown()
    thread.join(timeout=10)
    return elapsed, response


def run_serving_cold_start(vertices: int, edges: int):
    """Fingerprint request against a store vs. shipping the edge arrays.

    Both servers are cold (fresh service, no memoized properties) so each
    response pays the full property extraction; the paths differ only in
    how the graph reaches the service.
    """
    system = cached("graph_store_serving_model", _train_serving_system)
    graph = generate_rmat(vertices, edges, seed=424, graph_type="rmat")
    store_dir = tempfile.mkdtemp(prefix="bench-serving-store-")
    try:
        store = GraphStore(store_dir)
        fingerprint = store.save(graph)
        mapped_seconds, mapped_response = _first_response(
            system, fingerprint, graph_store=store)
        shipped_seconds, shipped_response = _first_response(system, graph)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    assert mapped_response["selected"] == shipped_response["selected"]
    assert mapped_response["scores"] == shipped_response["scores"]
    return {"graph_fingerprint": (mapped_seconds, mapped_response),
            "edge arrays (JSON)": (shipped_seconds, shipped_response)}


def report_serving_cold_start(outcomes: dict, vertices: int,
                              edges: int) -> float:
    speedup = (outcomes["edge arrays (JSON)"][0]
               / outcomes["graph_fingerprint"][0])
    rows = [(mode, seconds, response["selected"])
            for mode, (seconds, response) in outcomes.items()]
    report_table(
        "graph_store_serving_cold_start",
        ("request payload", "first response (s)", "selected"), rows,
        title=f"Serving cold start, |V|={vertices} |E|={edges}: "
              f"'graph_fingerprint' opens the stored graph O(1) "
              f"server-side instead of round-tripping the edge arrays "
              f"through JSON ({speedup:.2f}x); identical responses "
              f"asserted")
    return speedup


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def run_full():
    store_dir = os.path.join(CACHE_DIRECTORY, "graph_store_corpus")
    store = _ensure_store(store_dir, NUM_GRAPHS, VERTICES, EDGES)
    jobs = PARALLEL_JOBS

    reports = run_worker_rss(store_dir, jobs)
    reduction = report_worker_rss(reports, jobs)

    first_task = run_first_task(store, jobs)
    first_task_speedup = report_first_task(first_task, jobs)

    cold_start = run_serving_cold_start(SERVING_VERTICES, SERVING_EDGES)
    cold_start_speedup = report_serving_cold_start(
        cold_start, SERVING_VERTICES, SERVING_EDGES)

    assert cold_start_speedup >= MIN_COLD_START_SPEEDUP, (
        f"serving cold-start speedup {cold_start_speedup:.2f}x below "
        f"{MIN_COLD_START_SPEEDUP}x")
    # Both gates hold independently of the core count: the driver's corpus
    # residency is set before the pool exists, and the start-up shipping
    # always delays the first task.
    assert reduction >= MIN_RSS_REDUCTION, (
        f"store-backed driver corpus residency reduction {reduction:.2f}x "
        f"below {MIN_RSS_REDUCTION}x")
    assert first_task_speedup >= MIN_FIRST_TASK_SPEEDUP, (
        f"first-task speedup {first_task_speedup:.2f}x below "
        f"{MIN_FIRST_TASK_SPEEDUP}x")
    return reports


def run_quick():
    """CI smoke: tiny corpus, probe plumbing and identity assertions only."""
    store_dir = tempfile.mkdtemp(prefix="bench-graph-store-quick-")
    try:
        store = _ensure_store(store_dir, QUICK_NUM_GRAPHS, QUICK_VERTICES,
                              QUICK_EDGES)
        reports = run_worker_rss(store_dir, QUICK_JOBS)
        assert reports["store"]["records"] == reports["arrays"]["records"]

        first_task = run_first_task(store, QUICK_JOBS)

        # The mapped corpus must also match the sequential inline reference.
        graphs = _load_corpus(store, "store")
        inline = _make_profiler(jobs=1).profile(graphs, [])
        _assert_identical([inline, first_task["store"][2]])

        run_serving_cold_start(QUICK_SERVING_VERTICES, QUICK_SERVING_EDGES)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    print("quick smoke passed: store-backed profiling (probe, pool) and "
          "fingerprint serving produced results identical to the in-RAM "
          "baseline")


if pytest is not None:
    @pytest.mark.benchmark(group="graph_store")
    def test_graph_store(benchmark):
        benchmark.pedantic(run_full, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: tiny corpus, identity "
                             "assertions only (no timing or memory "
                             "thresholds)")
    parser.add_argument("--probe", choices=("store", "arrays"), default=None,
                        help=argparse.SUPPRESS)  # internal measurement child
    parser.add_argument("--store-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--jobs", type=int, default=PARALLEL_JOBS,
                        help=argparse.SUPPRESS)
    parser.add_argument("--dump", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.probe:
        return run_probe(args)
    if args.quick:
        run_quick()
    else:
        run_full()
    return 0


if __name__ == "__main__":
    sys.exit(main())
