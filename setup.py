"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments without the
``wheel`` package (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
