"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments without the
``wheel`` package (``pip install -e . --no-use-pep517``).

The ``compiled`` extra pulls in numba for the optional compiled kernel tier
(:mod:`repro._compiled`): ``pip install -e .[compiled]``.  Without it the
package behaves identically on the pure-numpy kernels.
"""

from setuptools import setup

setup(
    extras_require={
        "compiled": ["numba"],
    },
)
