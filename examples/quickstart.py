#!/usr/bin/env python
"""Quickstart: train EASE on generated graphs and auto-select a partitioner.

This walks through the full pipeline of the paper (Figure 3 / Figure 5):

1. generate training graphs with R-MAT,
2. profile them: partition with every candidate partitioner, measure quality
   metrics and partitioning time, run the processing workloads,
3. train the three predictors,
4. ask EASE which partitioner to use for a new, unseen graph.

Run with:  python examples/quickstart.py
"""

from repro.generators import (
    TABLE2_PARAMETER_COMBINATIONS,
    generate_realworld_graph,
    generate_rmat,
)
from repro.ease import EASE, GraphProfiler, OptimizationGoal


def build_training_corpus():
    """A small, diverse R-MAT corpus (seconds to generate and profile)."""
    graphs = []
    sizes = [(128, 900), (256, 1800), (384, 2700), (512, 3600), (768, 5000)]
    for index, (num_vertices, num_edges) in enumerate(sizes):
        for combo in (0, 4, 8):  # three of the nine Table II combinations
            graphs.append(generate_rmat(
                num_vertices, num_edges, TABLE2_PARAMETER_COMBINATIONS[combo],
                seed=13 * index + combo, graph_type="rmat"))
    return graphs


def main() -> None:
    print("=== 1-2. Generate and profile training graphs ===")
    training_graphs = build_training_corpus()
    profiler = GraphProfiler(partition_counts=(4, 8),
                             processing_partition_count=4)
    dataset = profiler.profile(training_graphs, training_graphs[:8])
    print(f"profiled: {dataset.summary()}")

    print("\n=== 3. Train EASE ===")
    ease = EASE().train(dataset)
    print("trained quality, partitioning-time and processing-time predictors")

    print("\n=== 4. Select a partitioner for an unseen graph ===")
    new_graph = generate_realworld_graph("soc", 600, 4500, seed=99)
    for algorithm in ("pagerank", "connected_components", "synthetic_high"):
        for goal in (OptimizationGoal.END_TO_END, OptimizationGoal.PROCESSING):
            result = ease.select_partitioner(new_graph, algorithm,
                                             num_partitions=4, goal=goal,
                                             num_iterations=10)
            best = result.ranking()[0]
            print(f"  {algorithm:22s} goal={goal:11s} -> {result.selected:7s} "
                  f"(predicted processing {best.predicted_processing_seconds:.3f}s, "
                  f"partitioning {best.predicted_partitioning_seconds:.3f}s)")

    print("\nPer-candidate breakdown for PageRank / end-to-end:")
    result = ease.select_partitioner(new_graph, "pagerank", 4,
                                     goal=OptimizationGoal.END_TO_END)
    for score in result.ranking():
        print(f"  {score.partitioner:7s} e2e={score.predicted_end_to_end_seconds:8.3f}s "
              f"rf={score.predicted_quality['replication_factor']:.2f}")


if __name__ == "__main__":
    main()
