#!/usr/bin/env python
"""Training-data enrichment workflow (Section V-D of the paper).

A quality predictor trained purely on synthetic R-MAT graphs can be weak for
specific graph types (the paper observes this for wiki graphs).  This example
enriches the synthetic training set with a growing number of wiki-like graphs
and shows how the prediction error for the wiki type drops.

Run with:  python examples/enrichment_workflow.py
"""

from repro.generators import (
    TABLE2_PARAMETER_COMBINATIONS,
    generate_realworld_graph,
    generate_rmat,
)
from repro.ease import EnrichmentStudy, GraphProfiler, PartitioningQualityPredictor


def main() -> None:
    partitioners = ("2d", "dbh", "hdrf", "2ps", "ne", "hep100")
    profiler = GraphProfiler(partitioner_names=partitioners,
                             partition_counts=(4, 8))

    print("Profiling synthetic training graphs ...")
    synthetic_graphs = []
    for index, (num_vertices, num_edges) in enumerate(
            [(128, 900), (256, 1800), (512, 3600), (640, 4400)]):
        for combo in (0, 4, 8):
            synthetic_graphs.append(generate_rmat(
                num_vertices, num_edges, TABLE2_PARAMETER_COMBINATIONS[combo],
                seed=11 * index + combo, graph_type="rmat"))
    base_records = profiler.profile_quality(synthetic_graphs).quality

    print("Profiling the wiki enrichment pool and the test set ...")
    wiki_pool = [generate_realworld_graph("wiki", 300 + 40 * s, 2200 + 250 * s,
                                          seed=100 + s) for s in range(10)]
    pool_records = profiler.profile_quality(wiki_pool).quality

    test_graphs = [generate_realworld_graph("wiki", 450, 3300, seed=300),
                   generate_realworld_graph("wiki", 500, 3600, seed=301),
                   generate_realworld_graph("soc", 450, 3300, seed=302),
                   generate_realworld_graph("web", 450, 3400, seed=303)]
    test_records = profiler.profile_quality(test_graphs).quality

    study = EnrichmentStudy(
        base_records, pool_records, test_records,
        predictor_factory=lambda: PartitioningQualityPredictor(),
        metric="replication_factor", seed=5)

    print("\nReplication-factor MAPE per graph type vs enrichment size "
          "(Figure 8 analogue):")
    results = study.run(enrichment_sizes=(0, 3, 6, 10), repetitions=2)
    graph_types = sorted(results[0].mape_per_type)
    print("  " + f"{'#graphs':>8s}" + "".join(f"{t:>14s}" for t in graph_types))
    for result in results:
        row = f"  {result.num_enrichment_graphs:8d}" + "".join(
            f"{result.mape_per_type[t]:14.3f}" for t in graph_types)
        print(row)

    improvement = (results[0].mape_of("wiki") - results[-1].mape_of("wiki"))
    print(f"\nEnrichment reduced the wiki MAPE by {improvement:.3f} "
          f"({results[0].mape_of('wiki'):.3f} -> {results[-1].mape_of('wiki'):.3f}).")


if __name__ == "__main__":
    main()
