#!/usr/bin/env python
"""Why partitioner selection matters (Section III of the paper).

Reproduces the motivation experiments at laptop scale:

* PageRank (communication-bound) on two skewed graphs, comparing CRVC, 2D,
  2PS and NE — better replication factor means faster processing, but the
  better partitioners cost more partitioning time (Figure 1).
* Label Propagation (computation-bound) on a social graph, comparing DBH, 2D
  and NE — vertex balance matters more than replication factor (Figure 2).

Run with:  python examples/partitioner_comparison.py
"""

from repro.generators import generate_realworld_graph
from repro.partitioning import compute_quality_metrics, create_partitioner
from repro.processing import LabelPropagation, PageRank, ProcessingEngine
from repro.ease import PartitioningCostModel


def pagerank_motivation() -> None:
    print("=== PageRank (communication-bound), Figure 1 analogue ===")
    graphs = {
        "friendster-like": generate_realworld_graph("soc", 1500, 12000, seed=1),
        "sk2005-like": generate_realworld_graph("web", 1500, 14000, seed=2),
    }
    partitioners = ("crvc", "2d", "2ps", "ne")
    cost_model = PartitioningCostModel()
    engine = ProcessingEngine()
    for graph_name, graph in graphs.items():
        print(f"\n  graph: {graph_name}  |V|={graph.num_vertices} |E|={graph.num_edges}")
        print(f"  {'partitioner':12s} {'RF':>6s} {'part. time (s)':>15s} "
              f"{'PageRank time (s)':>18s}")
        for name in partitioners:
            partition = create_partitioner(name)(graph, 8)
            metrics = compute_quality_metrics(partition)
            partitioning_seconds = cost_model.estimate_seconds(graph, name, 8)
            processing = engine.run(partition, PageRank(num_iterations=20))
            print(f"  {name:12s} {metrics.replication_factor:6.2f} "
                  f"{partitioning_seconds:15.4f} {processing.total_seconds:18.4f}")


def label_propagation_motivation() -> None:
    print("\n=== Label Propagation (computation-bound), Figure 2 analogue ===")
    graph = generate_realworld_graph("soc", 2000, 16000, seed=3)
    print(f"  graph: socfb-like  |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(f"  {'partitioner':12s} {'LP time (s)':>12s} {'vertex bal.':>12s} {'RF':>6s}")
    engine = ProcessingEngine()
    for name in ("dbh", "2d", "ne"):
        partition = create_partitioner(name)(graph, 4)
        metrics = compute_quality_metrics(partition)
        processing = engine.run(partition, LabelPropagation(num_iterations=10))
        print(f"  {name:12s} {processing.total_seconds:12.4f} "
              f"{metrics.vertex_balance:12.2f} {metrics.replication_factor:6.2f}")


if __name__ == "__main__":
    pagerank_motivation()
    label_propagation_motivation()
