#!/usr/bin/env python
"""Compare EASE's automatic selection against manual strategies (Table VIII).

Trains EASE on synthetic graphs, profiles a small set of "real-world-like"
evaluation graphs (true processing and partitioning times for every
partitioner), and compares the time the different selection strategies lead
to: EASE (SPS), the optimal pick (SO), the smallest-replication-factor pick
(SSRF), random (SR) and worst (SW).

Run with:  python examples/auto_selection_strategies.py
"""

from repro.generators import (
    TABLE2_PARAMETER_COMBINATIONS,
    generate_realworld_graph,
    generate_rmat,
)
from repro.ease import (
    EASE,
    GraphProfiler,
    OptimizationGoal,
    SelectionStrategyEvaluator,
)


def main() -> None:
    partitioners = ("2d", "crvc", "dbh", "hdrf", "2ps", "ne", "hep10", "hep100")
    algorithms = ("pagerank", "connected_components", "sssp", "synthetic_high")
    profiler = GraphProfiler(partitioner_names=partitioners,
                             partition_counts=(4,),
                             processing_partition_count=4,
                             algorithms=algorithms)

    print("Training EASE on a synthetic R-MAT corpus ...")
    training_graphs = []
    sizes = [(128, 900), (256, 1800), (512, 3600), (768, 5200)]
    for index, (num_vertices, num_edges) in enumerate(sizes):
        for combo in (0, 4, 8):
            training_graphs.append(generate_rmat(
                num_vertices, num_edges, TABLE2_PARAMETER_COMBINATIONS[combo],
                seed=7 * index + combo, graph_type="rmat"))
    ease = EASE(partitioner_names=partitioners).train(
        profiler.profile(training_graphs, training_graphs))

    print("Profiling evaluation graphs (true costs for every partitioner) ...")
    evaluation_graphs = [
        generate_realworld_graph("soc", 500, 3800, seed=21),
        generate_realworld_graph("web", 600, 4200, seed=22),
        generate_realworld_graph("wiki", 550, 4000, seed=23),
    ]
    evaluation = profiler.profile_processing(evaluation_graphs)

    evaluator = SelectionStrategyEvaluator(ease.selector)
    comparisons = evaluator.compare(evaluation)

    print("\nAverage time of each strategy's pick, normalised to the optimum "
          "(lower is better, SO = 1.00):")
    header = f"  {'goal':11s} {'algorithm':22s}" + "".join(
        f"{name:>8s}" for name in ("SPS", "SSRF", "SR", "SW"))
    print(header)
    for comparison in comparisons:
        base = comparison.strategy_seconds["SO"]
        row = (f"  {comparison.goal:11s} {comparison.algorithm:22s}"
               + "".join(f"{comparison.strategy_seconds[name] / base:8.2f}"
                         for name in ("SPS", "SSRF", "SR", "SW")))
        print(row)

    e2e = [c for c in comparisons if c.goal == OptimizationGoal.END_TO_END]
    picked_best = sum(c.optimal_pick_fraction["SPS"] * c.num_jobs for c in e2e)
    total_jobs = sum(c.num_jobs for c in e2e)
    print(f"\nEASE selected the optimal partitioner in "
          f"{100.0 * picked_best / total_jobs:.1f}% of end-to-end jobs "
          f"({total_jobs} jobs).")


if __name__ == "__main__":
    main()
