"""Tests of the fault-injection harness and the failure-policy layer.

The contracts under test:

* the ``REPRO_FAULTS`` grammar parses/encodes losslessly, one-shot specs
  fire exactly once (also across re-installs sharing a state directory),
  ``*`` specs fire on every matching hit, and key filters scope faults to
  matching call sites;
* the checkpoint journal survives torn appends: every intact frame loads,
  the torn tail is truncated in place, and legacy version-2 checkpoints
  load and upgrade transparently;
* corrupt artifact files are treated as cache misses (deleted, recomputed)
  instead of crashing the run;
* the scheduler retries transient task failures to a record-identical
  dataset, quarantines poisoned tasks (skipping their dependents) instead
  of retrying forever, and enforces per-task execution deadlines;
* worker heartbeats veto the stale-claim sweep while the owner is alive,
  and SIGTERM drains a worker gracefully (exit 0, final heartbeat).
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.faults import (
    CRASH_EXIT_CODE,
    EVERY_HIT,
    FAULT_POINTS,
    FailurePolicy,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    QuarantineError,
    clear_plan,
    fire,
    install_plan,
    tear,
)
from repro.generators import generate_rmat
from repro.ease import GraphProfiler
from repro.obs import get_registry
from repro.runtime import (
    ArtifactStore,
    CheckpointJournal,
    ProfileExecutor,
    WorkerPoolBackend,
    build_dataset,
)
from repro.runtime.backends import InlineBackend, _claim_next
from repro.runtime.executor import load_checkpoint, save_checkpoint

PARTITIONERS = ("2d", "dbh")


def make_profiler(**kwargs):
    return GraphProfiler(partitioner_names=PARTITIONERS,
                         partition_counts=(2,),
                         processing_partition_count=2,
                         algorithms=("pagerank",), seed=0, **kwargs)


@pytest.fixture(autouse=True)
def disarm():
    """Fault plans are process-global; never leak one into another test."""
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(scope="module")
def graphs():
    return [generate_rmat(96, 500, seed=s, graph_type="rmat")
            for s in range(2)]


@pytest.fixture(scope="module")
def reference(graphs):
    clear_plan()
    return make_profiler().profile(graphs, graphs)


def assert_datasets_identical(actual, expected):
    assert actual.quality == expected.quality
    assert actual.partitioning_time == expected.partitioning_time
    assert actual.processing == expected.processing


# --------------------------------------------------------------------------- #
# Plan grammar
# --------------------------------------------------------------------------- #
class TestFaultGrammar:
    def test_spec_roundtrip(self):
        spec = FaultSpec.parse("worker.execute:error:2")
        assert (spec.point, spec.kind, spec.nth, spec.arg) == \
            ("worker.execute", "error", 2, None)
        assert spec.encode() == "worker.execute:error:2"

    def test_star_means_every_hit(self):
        spec = FaultSpec.parse("queue.claim:delay:*:0.2")
        assert spec.nth == EVERY_HIT
        assert spec.delay_seconds() == 0.2
        assert spec.encode() == "queue.claim:delay:*:0.2"

    def test_kind_specific_args(self):
        assert FaultSpec.parse("artifact.write:torn:1:0.25").keep_fraction() \
            == 0.25
        assert FaultSpec.parse("artifact.write:torn:1").keep_fraction() == 0.5
        assert FaultSpec.parse("worker.execute:error:*:quality") \
            .key_filter() == "quality"
        assert FaultSpec.parse("queue.claim:delay:1").key_filter() is None

    @pytest.mark.parametrize("text", [
        "worker.execute",              # too few parts
        "worker.execute:error",        # no nth
        "worker.execute:bogus:1",      # unknown kind
        "worker.execute:error:0",      # nth < 1
        "worker.execute:error:x",      # non-integer nth
        ":error:1",                    # empty point
        "a:b:c:d:e",                   # too many parts
        "queue.claim:delay:1:-0.5",    # negative delay
        "artifact.write:torn:1:1.5",   # keep fraction out of range
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)

    def test_plan_roundtrip_and_blank_segments(self):
        text = "worker.execute:error:2,artifact.write:torn:1:0.3"
        plan = FaultPlan.parse(text + ",")
        assert len(plan) == 2
        assert plan.encode() == text

    def test_from_env(self):
        plan = FaultPlan.from_env({"REPRO_FAULTS": "queue.ack:torn:1",
                                   "REPRO_FAULTS_SEED": "7"})
        assert plan is not None and plan.seed == 7
        assert plan.specs[0].point == "queue.ack"
        assert FaultPlan.from_env({"REPRO_FAULTS": "  "}) is None
        assert FaultPlan.from_env({}) is None

    def test_registered_points_cover_the_documented_surface(self):
        for point in ("artifact.write", "checkpoint.append", "queue.claim",
                      "queue.ack", "worker.execute",
                      "serving.resolve_properties"):
            assert point in FAULT_POINTS


# --------------------------------------------------------------------------- #
# Firing semantics
# --------------------------------------------------------------------------- #
class TestFire:
    def test_unarmed_is_a_noop(self):
        assert fire("worker.execute", key="anything") is None

    def test_one_shot_fires_exactly_once_on_the_nth_hit(self):
        install_plan(FaultPlan.parse("worker.execute:error:2"))
        assert fire("worker.execute") is None            # hit 1
        with pytest.raises(InjectedFault):
            fire("worker.execute")                       # hit 2
        assert fire("worker.execute") is None            # hit 3

    def test_every_hit_with_key_filter(self):
        install_plan(FaultPlan.parse("worker.execute:error:*:quality"))
        assert fire("worker.execute", key="('partition', 'g0')") is None
        for _ in range(2):
            with pytest.raises(InjectedFault):
                fire("worker.execute", key="('quality', 'g0', '2d', 2)")

    def test_points_count_hits_independently(self):
        install_plan(FaultPlan.parse("queue.ack:error:1"))
        assert fire("queue.claim") is None
        with pytest.raises(InjectedFault):
            fire("queue.ack")

    def test_delay_sleeps_a_seeded_jittered_interval(self):
        install_plan(FaultPlan.parse("queue.claim:delay:1:0.05", seed=3))
        started = time.perf_counter()
        assert fire("queue.claim") is None
        elapsed = time.perf_counter() - started
        assert 0.02 <= elapsed < 0.5  # within [0.5, 1.0] x 0.05, roughly

    def test_torn_spec_is_returned_for_cooperative_truncation(self):
        install_plan(FaultPlan.parse("artifact.write:torn:1:0.5"))
        spec = fire("artifact.write")
        assert spec is not None and spec.kind == "torn"
        assert tear(b"0123456789", spec) == b"01234"
        assert tear(b"x", spec) == b"x"  # never less than one byte

    def test_once_markers_survive_plan_reinstall(self, tmp_path):
        state = str(tmp_path / "state")
        install_plan(FaultPlan.parse("worker.execute:error:1"),
                     state_dir=state)
        with pytest.raises(InjectedFault):
            fire("worker.execute")
        # A respawned worker arms the same plan with the same state dir;
        # the marker left by the first firing suppresses a repeat.
        install_plan(FaultPlan.parse("worker.execute:error:1"),
                     state_dir=state)
        assert fire("worker.execute") is None

    def test_firing_increments_the_metrics_counter(self):
        counter = get_registry().counter(
            "faults_injected_total", labels=("point", "kind"))
        before = counter.labels("queue.claim", "delay").value
        install_plan(FaultPlan.parse("queue.claim:delay:1:0"))
        fire("queue.claim")
        assert counter.labels("queue.claim", "delay").value == before + 1


# --------------------------------------------------------------------------- #
# FailurePolicy
# --------------------------------------------------------------------------- #
class TestFailurePolicy:
    def test_backoff_doubles_and_caps(self):
        policy = FailurePolicy(backoff_base_seconds=0.05,
                               backoff_max_seconds=0.15)
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == 0.05
        assert policy.backoff(2) == 0.1
        assert policy.backoff(3) == 0.15  # capped
        assert policy.backoff(10) == 0.15

    def test_deadline_lookup(self):
        policy = FailurePolicy(task_deadlines={"quality": 2.0},
                               default_task_deadline=5.0)
        assert policy.deadline_for("quality") == 2.0
        assert policy.deadline_for("partition") == 5.0
        assert policy.has_deadlines()
        assert not FailurePolicy().has_deadlines()
        assert FailurePolicy().deadline_for("quality") is None

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base_seconds": -1},
        {"task_deadlines": {"quality": 0.0}},
        {"default_task_deadline": -2.0},
        {"heartbeat_interval_seconds": 0.0},
        {"heartbeat_timeout_seconds": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FailurePolicy(**kwargs)


# --------------------------------------------------------------------------- #
# Checkpoint journal
# --------------------------------------------------------------------------- #
class TestCheckpointJournal:
    def test_append_and_load_roundtrip(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "cp.journal"))
        journal.append({("a", 1): {"x": 1}})
        journal.append({("b", 2): {"y": 2}})
        assert journal.load() == {("a", 1): {"x": 1}, ("b", 2): {"y": 2}}

    def test_rewrite_compacts(self, tmp_path):
        path = str(tmp_path / "cp.journal")
        journal = CheckpointJournal(path)
        journal.append({"k": 1})
        journal.append({"k": 2})  # superseding frame
        assert journal.load() == {"k": 2}
        journal.rewrite({"k": 2})
        compact_size = os.path.getsize(path)
        journal.append({"k": 3})
        assert os.path.getsize(path) > compact_size
        assert journal.load() == {"k": 3}

    def test_torn_tail_is_truncated_and_repaired(self, tmp_path):
        path = str(tmp_path / "cp.journal")
        journal = CheckpointJournal(path)
        journal.append({"first": [1, 2, 3]})
        intact_size = os.path.getsize(path)
        journal.append({"second": [4, 5, 6]})
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        assert journal.load() == {"first": [1, 2, 3]}
        assert os.path.getsize(path) == intact_size  # tail cut away
        # Appends after the repair extend a clean journal.
        journal.append({"third": [7]})
        assert journal.load() == {"first": [1, 2, 3], "third": [7]}

    def test_injected_torn_append_loses_only_the_tail(self, tmp_path):
        path = str(tmp_path / "cp.journal")
        journal = CheckpointJournal(path)
        install_plan(FaultPlan.parse("checkpoint.append:torn:1:0.4"))
        journal.append({"a": 1, "b": 2, "c": 3})
        clear_plan()
        loaded = journal.load()
        assert set(loaded) < {"a", "b", "c"}  # tail lost, prefix intact
        journal.append({"d": 4})
        assert journal.load() == {**loaded, "d": 4}

    def test_legacy_v2_checkpoint_loads_and_upgrades(self, tmp_path):
        path = str(tmp_path / "cp.pkl")
        with open(path, "wb") as handle:
            pickle.dump({"kind": "profile_checkpoint", "format_version": 2,
                         "payloads": {"old": 42}}, handle)
        journal = CheckpointJournal(path)
        assert journal.load() == {"old": 42}
        journal.append({"new": 43})
        with open(path, "rb") as handle:
            assert handle.read(6) == b"RPJL1\n"  # upgraded in place
        assert journal.load() == {"old": 42, "new": 43}

    def test_save_load_checkpoint_wrappers(self, tmp_path):
        path = str(tmp_path / "cp.journal")
        save_checkpoint(path, {("t", 0): {"p": 1}})
        assert load_checkpoint(path) == {("t", 0): {"p": 1}}
        assert load_checkpoint(str(tmp_path / "absent")) == {}


# --------------------------------------------------------------------------- #
# Artifact-store corruption
# --------------------------------------------------------------------------- #
class TestArtifactCorruption:
    def test_corrupt_pickle_is_a_miss_and_is_deleted(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        key = ("partition", "fp", "2d", 2, 0)
        store.put(key, {"assignment": [0, 1]})
        path = store.path_for(key)
        with open(path, "wb") as handle:
            handle.write(b"\x80corrupt garbage")
        fresh = ArtifactStore(cache_dir)
        assert fresh.get(key) is None
        assert not os.path.exists(path)
        # The slot is reusable after the discard.
        fresh.put(key, {"assignment": [1, 0]})
        assert ArtifactStore(cache_dir).get(key) == {"assignment": [1, 0]}

    def test_verify_detects_and_discards_corruption(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        key = ("partition", "fp", "dbh", 2, 0)
        store.put(key, [1, 2, 3])
        assert ArtifactStore(cache_dir).verify(key)
        path = store.path_for(key)
        with open(path, "wb") as handle:
            handle.write(b"nope")
        fresh = ArtifactStore(cache_dir)
        assert not fresh.verify(key)
        assert not os.path.exists(path)

    def test_torn_write_fault_lands_a_detectable_corrupt_file(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        key = ("properties", "fp", False, 0)
        install_plan(FaultPlan.parse("artifact.write:torn:1"))
        store.put(key, {"big": list(range(100))})
        clear_plan()
        # The writing store still holds the value in memory...
        assert store.get(key) == {"big": list(range(100))}
        # ...but the disk mirror is torn, and a later run treats it as a
        # miss instead of crashing.
        assert ArtifactStore(cache_dir).get(key) is None


# --------------------------------------------------------------------------- #
# Retry / quarantine / deadlines through the scheduler
# --------------------------------------------------------------------------- #
class TestRetryAndQuarantine:
    def test_transient_fault_is_retried_to_an_identical_dataset(
            self, graphs, reference):
        install_plan(FaultPlan.parse("worker.execute:error:2"))
        profiler = make_profiler(failure_policy=FailurePolicy(
            backoff_base_seconds=0.01))
        dataset = profiler.profile(graphs, graphs)
        stats = profiler.last_run_stats
        assert stats.retried_tasks >= 1
        assert stats.quarantined_tasks == 0
        assert_datasets_identical(dataset, reference)

    def test_poison_task_is_quarantined_with_traceback(self, graphs):
        install_plan(FaultPlan.parse("worker.execute:error:*:quality"))
        profiler = make_profiler(failure_policy=FailurePolicy(
            max_attempts=2, backoff_base_seconds=0.001))
        with pytest.raises(QuarantineError) as excinfo:
            profiler.profile(graphs[:1], graphs[:1])
        records = excinfo.value.records
        assert records and all(r.kind == "quality" for r in records)
        assert all(r.attempts == 2 for r in records)
        assert all("InjectedFault" in r.traceback for r in records)
        stats = excinfo.value.stats
        assert stats is not None
        assert stats.quarantined_tasks == len(records)
        assert [q["kind"] for q in stats.quarantines] == \
            [r.kind for r in records]

    def test_poisoned_dependency_skips_its_dependents(self, graphs):
        install_plan(FaultPlan.parse("worker.execute:error:*:partition"))
        profiler = make_profiler(failure_policy=FailurePolicy(
            max_attempts=2, backoff_base_seconds=0.001))
        with pytest.raises(QuarantineError) as excinfo:
            profiler.profile(graphs[:1], graphs[:1])
        assert all(r.kind == "partition" for r in excinfo.value.records)
        stats = excinfo.value.stats
        # Quality/timing/processing tasks depend on the poisoned partitions
        # and must be skipped, not retried or executed.
        assert stats.skipped_tasks > 0

    def test_profile_cli_reports_quarantine_and_exits_3(self, tmp_path,
                                                        capsys):
        from repro.graph.io import save_npz
        from repro.cli import main

        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        save_npz(generate_rmat(96, 500, seed=0), str(graphs_dir / "g0.npz"))
        install_plan(FaultPlan.parse("worker.execute:error:*:quality"))
        code = main(["profile", "--graphs", str(graphs_dir),
                     "--output", str(tmp_path / "p.pkl"),
                     "--partitioners", "2d",
                     "--algorithms", "pagerank",
                     "--partition-counts", "2",
                     "--processing-partitions", "2",
                     "--max-task-attempts", "2"])
        assert code == 3
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "InjectedFault" in err
        assert "--resume" in err

    def test_deadline_expiry_resubmits_the_task(self, graphs, reference):
        class SwallowOnceBackend(InlineBackend):
            """Swallows the first submission of each quality task (a hung
            worker); retried attempts execute inline."""

            def __init__(self):
                super().__init__()
                self.swallowed = set()

            def submit(self, envelope):
                task_id = envelope.task_id
                if task_id[0] == "quality" and task_id not in self.swallowed:
                    self.swallowed.add(task_id)
                    return  # never completes
                super().submit(envelope)

            def next_completed(self, timeout=None):
                if not self._completed:
                    return None  # timed out
                return self._completed.pop(0)

        backend = SwallowOnceBackend()
        policy = FailurePolicy(default_task_deadline=0.2,
                               backoff_base_seconds=0.01)
        plan = make_profiler().build_plan(graphs, graphs)
        executor = ProfileExecutor(backend=backend, policy=policy)
        results, stats = executor.run(plan)
        assert backend.swallowed
        assert stats.deadline_failures >= len(backend.swallowed)
        assert stats.retried_tasks >= len(backend.swallowed)
        assert stats.quarantined_tasks == 0
        assert_datasets_identical(build_dataset(plan, results), reference)


# --------------------------------------------------------------------------- #
# Worker heartbeats and graceful shutdown
# --------------------------------------------------------------------------- #
class TestWorkerHeartbeats:
    def _claim_with_owner(self, queue_dir):
        with open(os.path.join(queue_dir, "tasks", "abc.task"),
                  "wb") as handle:
            pickle.dump({"task_id": ("t",)}, handle)
        assert _claim_next(queue_dir) is not None
        return os.path.join(queue_dir, "heartbeats", f"{os.getpid()}.hb")

    def test_fresh_heartbeat_vetoes_the_stale_sweep(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0,
                                    heartbeat_timeout=30.0)
        backend.start({}, None)
        heartbeat_path = self._claim_with_owner(queue_dir)
        with open(heartbeat_path, "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(), "time": time.time()}, handle)
        # The claim is "old" (max_age 0) but its owner is alive: vetoed.
        assert backend.requeue_stale(max_age_seconds=0.0) == 0
        assert os.listdir(os.path.join(queue_dir, "tasks")) == []
        # The owner stops heartbeating: the same sweep now requeues.
        stale = time.time() - 3600
        os.utime(heartbeat_path, (stale, stale))
        assert backend.requeue_stale(max_age_seconds=0.0) == 1
        assert os.listdir(os.path.join(queue_dir, "tasks")) == ["abc.task"]

    def test_requeue_removes_the_owner_sidecar(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0)
        backend.start({}, None)
        self._claim_with_owner(queue_dir)  # no heartbeat file at all
        assert backend.requeue_stale(max_age_seconds=0.0) == 1
        assert os.listdir(os.path.join(queue_dir, "claimed")) == []

    def test_sigterm_drains_gracefully(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        WorkerPoolBackend(queue_dir, spawn_workers=0).start({}, None)
        import repro

        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=package_root)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--queue-dir", queue_dir, "--poll-interval", "0.01",
             "--heartbeat-interval", "0.05"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        heartbeat_path = os.path.join(queue_dir, "heartbeats",
                                      f"{process.pid}.hb")
        deadline = time.time() + 30.0
        while not os.path.exists(heartbeat_path):
            assert time.time() < deadline, "worker never heartbeated"
            assert process.poll() is None, "worker died before SIGTERM"
            time.sleep(0.01)
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "worker exiting after 0 tasks" in output
        with open(heartbeat_path, encoding="utf-8") as handle:
            final = json.load(handle)
        assert final["stopping"] is True

    def test_crash_fault_exit_code_is_distinct(self, tmp_path):
        code = subprocess.run(
            [sys.executable, "-c",
             "import sys; sys.path.insert(0, sys.argv[1]);"
             "from repro.faults import FaultPlan, install_plan, fire;"
             "install_plan(FaultPlan.parse('worker.execute:crash:1'));"
             "fire('worker.execute')",
             os.path.join(os.path.dirname(os.path.dirname(
                 os.path.abspath(__file__))), "src")],
            ).returncode
        assert code == CRASH_EXIT_CODE
