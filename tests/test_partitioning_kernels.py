"""Tests for the streaming-partitioner scoring kernels (`repro.partitioning.kernels`).

The kernel layer must be *assignment-for-assignment identical* to the
sequential loop implementations it accelerates, including the 2PS bug fixes
that apply to both paths: the boolean-matrix replica fallback for k > 63 and
the least-loaded placement when every partition is at capacity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import generate_rmat
from repro.graph import Graph
from repro.partitioning import (
    BITMASK_MAX_PARTITIONS,
    HDRFPartitioner,
    HybridEdgePartitioner,
    StreamingScoreState,
    TwoPhaseStreamingPartitioner,
    create_partitioner,
    replication_balance_scores,
    streaming_partial_degrees,
    use_replica_bitmask,
)
from repro.partitioning import kernels


#: k grid from the issue: both sides of the bitmask cutoff plus a large k.
KERNEL_K_GRID = (2, 8, 63, 64, 100)


def _assert_paths_identical(partitioner_factory, graph, k):
    kernel = partitioner_factory(use_kernel=True)(graph, k).assignment
    loop = partitioner_factory(use_kernel=False)(graph, k).assignment
    np.testing.assert_array_equal(kernel, loop)
    return kernel


class TestKernelLoopEquality:
    """Kernel and loop paths must agree bit-for-bit."""

    @pytest.mark.parametrize("name", ("hdrf", "2ps", "hep1", "hep10"))
    @pytest.mark.parametrize("k", KERNEL_K_GRID)
    def test_registry_partitioners_identical(self, name, k):
        graph = generate_rmat(128, 900, seed=3)
        kernel = create_partitioner(name, use_kernel=True)(graph, k)
        loop = create_partitioner(name, use_kernel=False)(graph, k)
        np.testing.assert_array_equal(kernel.assignment, loop.assignment)

    @given(seed=st.integers(0, 100), k=st.sampled_from(KERNEL_K_GRID),
           balance_weight=st.sampled_from([1.0, 5.0]))
    @settings(max_examples=20, deadline=None)
    def test_hdrf_property_identical(self, seed, k, balance_weight):
        graph = generate_rmat(96, 500, seed=seed)
        _assert_paths_identical(
            lambda use_kernel: HDRFPartitioner(
                balance_weight=balance_weight, use_kernel=use_kernel),
            graph, k)

    @given(seed=st.integers(0, 100), k=st.sampled_from(KERNEL_K_GRID),
           balance_weight=st.sampled_from([1.0, 5.0]))
    @settings(max_examples=20, deadline=None)
    def test_2ps_property_identical(self, seed, k, balance_weight):
        graph = generate_rmat(96, 500, seed=seed)
        _assert_paths_identical(
            lambda use_kernel: TwoPhaseStreamingPartitioner(
                balance_weight=balance_weight, use_kernel=use_kernel),
            graph, k)

    @given(seed=st.integers(0, 50), k=st.sampled_from((2, 8, 64)))
    @settings(max_examples=10, deadline=None)
    def test_2ps_tight_slack_property_identical(self, seed, k):
        # A slack < 1 makes every partition reach capacity mid-stream, so the
        # overflow policy of both paths is exercised and must agree.
        graph = generate_rmat(96, 500, seed=seed)
        _assert_paths_identical(
            lambda use_kernel: TwoPhaseStreamingPartitioner(
                balance_slack=0.5, use_kernel=use_kernel),
            graph, k)

    @pytest.mark.parametrize("use_kernel", (True, False))
    def test_degenerate_graphs(self, use_kernel):
        for graph in (Graph.empty(num_vertices=4),
                      Graph.from_edges([(0, 0), (1, 1), (0, 1)]),
                      Graph.from_edges([(0, 1)] * 12)):
            for name in ("hdrf", "2ps", "hep10"):
                partition = create_partitioner(name, use_kernel=use_kernel)(
                    graph, 3)
                assert partition.assignment.shape[0] == graph.num_edges

    def test_escape_hatch_via_registry(self):
        assert create_partitioner("hdrf").use_kernel is True
        assert create_partitioner("hdrf", use_kernel=False).use_kernel is False
        assert create_partitioner("2ps", use_kernel=False).use_kernel is False


class TestTwoPSLargeKRegression:
    """k > 63: the replica fallback must really track replicas (the int64
    bitmask silently reads all-zero above the cutoff)."""

    def test_k64_fallback_uses_replication_score(self, monkeypatch):
        # Simulate the pre-fix behaviour (replication term silently zero for
        # k > 63) by blanking the membership vectors; the fixed partitioner
        # must produce a different assignment on a fallback-heavy stream.
        graph = generate_rmat(96, 900, seed=11)
        k = 64
        fixed = TwoPhaseStreamingPartitioner(balance_slack=1.01,
                                             use_kernel=False)(graph, k)

        original = kernels.replication_balance_scores

        def replication_blind(in_p_u, in_p_v, *args, **kwargs):
            return original(np.zeros_like(np.asarray(in_p_u)),
                            np.zeros_like(np.asarray(in_p_v)), *args, **kwargs)

        monkeypatch.setattr("repro.partitioning.two_ps."
                            "replication_balance_scores", replication_blind)
        blind = TwoPhaseStreamingPartitioner(balance_slack=1.01,
                                             use_kernel=False)(graph, k)
        assert not np.array_equal(fixed.assignment, blind.assignment), (
            "replica fallback at k=64 had no effect on a fallback-heavy "
            "stream; the k > 63 read path is degenerating to balance-only "
            "scoring again")

    def test_k64_lower_replication_than_blind_scoring(self):
        # With working replica tracking the fallback should co-locate edges
        # of already-replicated vertices; kernel and loop must agree on it.
        graph = generate_rmat(96, 900, seed=13)
        kernel = TwoPhaseStreamingPartitioner(balance_slack=1.01,
                                              use_kernel=True)(graph, 64)
        loop = TwoPhaseStreamingPartitioner(balance_slack=1.01,
                                            use_kernel=False)(graph, 64)
        np.testing.assert_array_equal(kernel.assignment, loop.assignment)

    def test_score_state_tracks_partitions_above_63(self):
        state = StreamingScoreState(num_vertices=4, num_partitions=70)
        state.assign(0, 1, 66)
        # Partition 66 now holds replicas of both endpoints; with equal sizes
        # elsewhere the replication term must attract the next pick there.
        assert state.pick(0, 1, 1.5, 1.5) == 66


class TestTwoPSCapacityOverflowRegression:
    """When every partition is at capacity the edge must go to the
    least-loaded partition, not silently overflow partition 0."""

    @pytest.mark.parametrize("use_kernel", (True, False))
    def test_overflow_spreads_instead_of_piling_on_zero(self, use_kernel):
        graph = generate_rmat(64, 400, seed=2)
        k = 4
        partition = TwoPhaseStreamingPartitioner(
            balance_slack=0.5, use_kernel=use_kernel)(graph, k)
        counts = partition.edge_counts()
        # Capacity is 0.5 * |E| / k = 50; the remaining half of the stream is
        # placed least-loaded-first, so the final counts stay within one edge
        # of each other instead of partition 0 absorbing the overflow.
        assert counts.max() - counts.min() <= 1
        assert counts.max() < graph.num_edges / 2

    def test_overflow_assignments_identical_between_paths(self):
        graph = generate_rmat(64, 400, seed=4)
        _assert_paths_identical(
            lambda use_kernel: TwoPhaseStreamingPartitioner(
                balance_slack=0.4, use_kernel=use_kernel),
            graph, 8)


class TestBitmaskCutoffUnification:
    def test_shared_constant(self):
        assert BITMASK_MAX_PARTITIONS == 63
        assert use_replica_bitmask(1)
        assert use_replica_bitmask(BITMASK_MAX_PARTITIONS)
        assert not use_replica_bitmask(BITMASK_MAX_PARTITIONS + 1)

    @pytest.mark.parametrize("name", ("hdrf", "2ps", "hep10"))
    @pytest.mark.parametrize("use_kernel", (True, False))
    def test_valid_assignments_above_cutoff(self, name, use_kernel):
        # Above the cutoff an int64 shift would silently produce 0 (read) or
        # drop the write; both paths must keep working replica state.
        graph = generate_rmat(96, 700, seed=5)
        k = BITMASK_MAX_PARTITIONS + 1
        partition = create_partitioner(name, use_kernel=use_kernel)(graph, k)
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < k


class TestStreamingPartialDegrees:
    def _reference(self, src, dst):
        counters = {}
        deg_u, deg_v = [], []
        for u, v in zip(src.tolist(), dst.tolist()):
            counters[u] = counters.get(u, 0) + 1
            counters[v] = counters.get(v, 0) + 1
            deg_u.append(counters[u])
            deg_v.append(counters[v])
        return np.array(deg_u), np.array(deg_v)

    @given(seed=st.integers(0, 200), num_edges=st.integers(1, 120))
    @settings(max_examples=30, deadline=None)
    def test_matches_sequential_counters(self, seed, num_edges):
        graph = generate_rmat(24, num_edges, seed=seed)
        deg_u, deg_v = streaming_partial_degrees(graph.src, graph.dst)
        ref_u, ref_v = self._reference(graph.src, graph.dst)
        np.testing.assert_array_equal(deg_u, ref_u)
        np.testing.assert_array_equal(deg_v, ref_v)

    def test_self_loop_counts_twice(self):
        src = np.array([0, 0], dtype=np.int64)
        dst = np.array([0, 1], dtype=np.int64)
        deg_u, deg_v = streaming_partial_degrees(src, dst)
        # The loop reads the counter after incrementing both endpoints, so a
        # self loop sees its vertex counted twice.
        np.testing.assert_array_equal(deg_u, [2, 3])
        np.testing.assert_array_equal(deg_v, [2, 1])

    def test_empty_stream(self):
        empty = np.zeros(0, dtype=np.int64)
        deg_u, deg_v = streaming_partial_degrees(empty, empty)
        assert deg_u.shape == (0,)
        assert deg_v.shape == (0,)


class TestSharedScoringFormula:
    def test_matches_manual_formula(self):
        in_u = np.array([1, 0, 1, 0], dtype=np.int64)
        in_v = np.array([1, 1, 0, 0], dtype=np.int64)
        sizes = np.array([5, 3, 4, 0], dtype=np.int64)
        scores = replication_balance_scores(in_u, in_v, 1.25, 1.75, sizes,
                                            5, 0, 1.0, 1.0)
        expected = (in_u * 1.25 + in_v * 1.75
                    + 1.0 * (5 - sizes) / (1.0 + 5 - 0))
        np.testing.assert_array_equal(scores, expected)

    def test_state_matches_bruteforce_argmax(self):
        # Drive the incremental state with a random stream and compare every
        # pick against the brute-force score vector.
        rng = np.random.default_rng(0)
        k = 7
        state = StreamingScoreState(num_vertices=10, num_partitions=k,
                                    balance_weight=1.0)
        in_matrix = np.zeros((10, k), dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        for _ in range(300):
            u, v = int(rng.integers(10)), int(rng.integers(10))
            coeff_u = 1.0 + float(rng.random())
            coeff_v = 1.0 + float(rng.random())
            expected_scores = replication_balance_scores(
                in_matrix[u], in_matrix[v], coeff_u, coeff_v, sizes,
                sizes.max(), sizes.min(), 1.0, 1.0)
            expected = int(np.argmax(expected_scores))
            picked = state.pick(u, v, coeff_u, coeff_v)
            assert picked == expected
            state.assign(u, v, picked)
            in_matrix[u, picked] = 1
            in_matrix[v, picked] = 1
            sizes[picked] += 1
