"""Property-based and structural tests for the processing cost model and
result records."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import generate_rmat
from repro.graph import Graph
from repro.partitioning import EdgePartition, create_partitioner
from repro.processing import (
    ClusterSpec,
    PageRank,
    PartitionedGraphCostModel,
    ProcessingEngine,
    ProcessingResult,
    SuperstepCost,
    SyntheticLow,
)


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(512, 4000, seed=51)


class TestSuperstepCostRecord:
    def test_total_is_sum(self):
        cost = SuperstepCost(superstep=0, compute_seconds=0.5,
                             communication_seconds=0.25, active_vertices=10,
                             updated_vertices=5, active_edges=20)
        assert cost.total_seconds == pytest.approx(0.75)


class TestProcessingResultRecord:
    def test_breakdown_sums(self, graph):
        partition = create_partitioner("dbh")(graph, 4)
        result = ProcessingEngine().run(partition, PageRank(num_iterations=4))
        assert result.total_seconds == pytest.approx(
            sum(c.total_seconds for c in result.superstep_costs))
        assert result.num_supersteps == len(result.superstep_costs)

    def test_record_is_flat_dictionary(self, graph):
        partition = create_partitioner("dbh")(graph, 4)
        result = ProcessingEngine().run(partition, SyntheticLow())
        record = result.as_record()
        assert all(not isinstance(value, (list, dict, np.ndarray))
                   for value in record.values())


class TestCostModelProperties:
    @given(active_fraction=st.floats(0.0, 1.0), updated_fraction=st.floats(0.0, 1.0),
           message_size=st.floats(0.5, 16.0))
    @settings(max_examples=30, deadline=None)
    def test_costs_are_nonnegative_and_finite(self, graph, active_fraction,
                                              updated_fraction, message_size):
        partition = create_partitioner("2d")(graph, 4)
        model = PartitionedGraphCostModel(partition, ClusterSpec(num_machines=4))
        rng = np.random.default_rng(1)
        active = rng.random(graph.num_vertices) < active_fraction
        updated = rng.random(graph.num_vertices) < updated_fraction
        compute, communication, active_edges = model.superstep_cost(
            active, updated, edge_work=1.0, vertex_work=1.0,
            message_size=message_size)
        assert compute >= 0 and np.isfinite(compute)
        assert communication >= 0 and np.isfinite(communication)
        assert 0 <= active_edges <= graph.num_edges

    def test_communication_monotone_in_updates(self, graph):
        partition = create_partitioner("crvc")(graph, 4)
        model = PartitionedGraphCostModel(partition, ClusterSpec(num_machines=4))
        nothing = np.zeros(graph.num_vertices, dtype=bool)
        some = np.zeros(graph.num_vertices, dtype=bool)
        some[: graph.num_vertices // 2] = True
        everything = np.ones(graph.num_vertices, dtype=bool)
        costs = [model.superstep_cost(everything, mask, 1.0, 1.0, 1.0)[1]
                 for mask in (nothing, some, everything)]
        assert costs[0] <= costs[1] <= costs[2]

    def test_compute_monotone_in_activity(self, graph):
        partition = create_partitioner("crvc")(graph, 4)
        model = PartitionedGraphCostModel(partition, ClusterSpec(num_machines=4))
        nothing = np.zeros(graph.num_vertices, dtype=bool)
        everything = np.ones(graph.num_vertices, dtype=bool)
        low = model.superstep_cost(nothing, nothing, 1.0, 1.0, 1.0)[0]
        high = model.superstep_cost(everything, nothing, 1.0, 1.0, 1.0)[0]
        assert low <= high

    def test_more_machines_reduce_communication_time(self, graph):
        assignment = create_partitioner("crvc")(graph, 8).assignment
        everything = np.ones(graph.num_vertices, dtype=bool)
        times = []
        for machines in (2, 8):
            partition = EdgePartition(graph, 8, assignment, "crvc")
            model = PartitionedGraphCostModel(partition,
                                              ClusterSpec(num_machines=machines))
            times.append(model.superstep_cost(everything, everything,
                                              1.0, 1.0, 4.0)[1])
        assert times[1] <= times[0]

    def test_edge_work_scales_compute(self, graph):
        partition = create_partitioner("2d")(graph, 4)
        model = PartitionedGraphCostModel(partition, ClusterSpec(num_machines=4))
        everything = np.ones(graph.num_vertices, dtype=bool)
        light = model.superstep_cost(everything, everything, 1.0, 0.0, 1.0)[0]
        heavy = model.superstep_cost(everything, everything, 10.0, 0.0, 1.0)[0]
        assert heavy == pytest.approx(10 * light)


class TestEngineInvariants:
    @given(iterations=st.integers(1, 6), k=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_pagerank_cost_scales_with_iterations(self, graph, iterations, k):
        partition = create_partitioner("dbh")(graph, k)
        engine = ProcessingEngine()
        result = engine.run(partition, PageRank(num_iterations=iterations))
        assert result.num_supersteps == iterations
        assert result.average_iteration_seconds > 0

    def test_identical_runs_have_identical_cost(self, graph):
        partition = create_partitioner("dbh")(graph, 4)
        engine = ProcessingEngine()
        first = engine.run(partition, PageRank(num_iterations=5))
        second = engine.run(partition, PageRank(num_iterations=5))
        assert first.total_seconds == pytest.approx(second.total_seconds)
