"""Tests for the partitioning quality metrics (Section II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.partitioning import (
    EdgePartition,
    compute_quality_metrics,
    replication_factor,
    edge_balance,
    vertex_balance,
    source_balance,
    destination_balance,
)


def _partition_of(edges, assignment, k):
    graph = Graph.from_edges(edges)
    return EdgePartition(graph, k, np.asarray(assignment), "manual")


class TestReplicationFactor:
    def test_single_partition_is_one(self):
        partition = _partition_of([(0, 1), (1, 2), (2, 0)], [0, 0, 0], 1)
        assert replication_factor(partition) == pytest.approx(1.0)

    def test_fully_cut_triangle(self):
        # Every edge on its own partition: every vertex is in exactly 2 parts.
        partition = _partition_of([(0, 1), (1, 2), (2, 0)], [0, 1, 2], 3)
        assert replication_factor(partition) == pytest.approx(2.0)

    def test_isolated_vertices_are_ignored(self):
        graph = Graph.from_edges([(0, 1)], num_vertices=10)
        partition = EdgePartition(graph, 2, np.array([0]), "manual")
        assert replication_factor(partition) == pytest.approx(1.0)


class TestBalanceMetrics:
    def test_perfectly_balanced_edges(self):
        partition = _partition_of([(0, 1), (2, 3), (4, 5), (6, 7)],
                                  [0, 0, 1, 1], 2)
        assert edge_balance(partition) == pytest.approx(1.0)

    def test_imbalanced_edges(self):
        partition = _partition_of([(0, 1), (2, 3), (4, 5), (6, 7)],
                                  [0, 0, 0, 1], 2)
        assert edge_balance(partition) == pytest.approx(3 / 2)

    def test_vertex_balance_of_disjoint_split(self):
        partition = _partition_of([(0, 1), (2, 3)], [0, 1], 2)
        assert vertex_balance(partition) == pytest.approx(1.0)

    def test_source_and_destination_balance_differ(self):
        # Partition 0 holds two edges from the same source; partition 1 holds
        # two edges into the same destination.
        partition = _partition_of([(0, 1), (0, 2), (3, 5), (4, 5)],
                                  [0, 0, 1, 1], 2)
        assert source_balance(partition) == pytest.approx(2 / 1.5)
        assert destination_balance(partition) == pytest.approx(2 / 1.5)

    def test_empty_partition_counts_in_balance(self):
        partition = _partition_of([(0, 1), (1, 2)], [0, 0], 2)
        assert edge_balance(partition) == pytest.approx(2.0)


class TestComputeQualityMetricsBundle:
    def test_matches_individual_functions(self, small_rmat_graph):
        from repro.partitioning import create_partitioner

        partition = create_partitioner("dbh")(small_rmat_graph, 4)
        bundle = compute_quality_metrics(partition)
        assert bundle.replication_factor == pytest.approx(
            replication_factor(partition))
        assert bundle.edge_balance == pytest.approx(edge_balance(partition))
        assert bundle.vertex_balance == pytest.approx(vertex_balance(partition))
        assert bundle.source_balance == pytest.approx(source_balance(partition))
        assert bundle.destination_balance == pytest.approx(
            destination_balance(partition))

    def test_as_dict_keys(self):
        partition = _partition_of([(0, 1)], [0], 1)
        metrics = compute_quality_metrics(partition).as_dict()
        assert set(metrics) == {
            "replication_factor", "edge_balance", "vertex_balance",
            "source_balance", "destination_balance",
        }


class TestEdgePartitionValidation:
    def test_rejects_wrong_length_assignment(self, tiny_graph):
        with pytest.raises(ValueError):
            EdgePartition(tiny_graph, 2, np.zeros(3, dtype=np.int64), "manual")

    def test_rejects_out_of_range_ids(self, tiny_graph):
        assignment = np.zeros(tiny_graph.num_edges, dtype=np.int64)
        assignment[0] = 5
        with pytest.raises(ValueError):
            EdgePartition(tiny_graph, 2, assignment, "manual")

    def test_edge_counts(self, tiny_graph):
        assignment = np.array([0, 0, 1, 1, 1, 0])
        partition = EdgePartition(tiny_graph, 2, assignment, "manual")
        np.testing.assert_array_equal(partition.edge_counts(), [3, 3])


class TestPropertyBasedInvariants:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_replication_factor_bounds(self, data):
        num_edges = data.draw(st.integers(1, 60))
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=num_edges, max_size=num_edges))
        k = data.draw(st.integers(1, 6))
        assignment = data.draw(st.lists(st.integers(0, k - 1),
                                        min_size=num_edges, max_size=num_edges))
        partition = _partition_of(edges, assignment, k)
        rf = replication_factor(partition)
        assert 1.0 <= rf <= k + 1e-9

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_balance_at_least_one(self, data):
        num_edges = data.draw(st.integers(1, 60))
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=num_edges, max_size=num_edges))
        k = data.draw(st.integers(1, 6))
        assignment = data.draw(st.lists(st.integers(0, k - 1),
                                        min_size=num_edges, max_size=num_edges))
        partition = _partition_of(edges, assignment, k)
        metrics = compute_quality_metrics(partition)
        assert metrics.edge_balance >= 1.0 - 1e-9
        assert metrics.vertex_balance >= 1.0 - 1e-9
        assert metrics.source_balance >= 1.0 - 1e-9
        assert metrics.destination_balance >= 1.0 - 1e-9
