"""Tests for the partitioner selector, strategy evaluation and the EASE facade."""

import numpy as np
import pytest

from repro.generators import generate_rmat, generate_realworld_graph
from repro.ml import RandomForestRegressor
from repro.ease import (
    EASE,
    GraphProfiler,
    OptimizationGoal,
    PartitioningQualityPredictor,
    SelectionStrategyEvaluator,
    per_type_mape_matrix,
)


@pytest.fixture(scope="module")
def profiler():
    return GraphProfiler(partitioner_names=("2d", "dbh", "ne", "hdrf"),
                         partition_counts=(4,),
                         processing_partition_count=4,
                         algorithms=("pagerank", "connected_components",
                                     "synthetic_high"))


@pytest.fixture(scope="module")
def trained_ease(profiler):
    graphs = [generate_rmat(128 * (1 + s % 3), 700 + 500 * s, seed=s,
                            graph_type="rmat")
              for s in range(6)]
    system = EASE(partitioner_names=profiler.partitioner_names)
    return system.train(profiler.profile(graphs, graphs))


@pytest.fixture(scope="module")
def evaluation_dataset(profiler):
    graphs = [generate_realworld_graph("soc", 250, 1800, seed=1),
              generate_realworld_graph("wiki", 300, 2200, seed=2)]
    return profiler.profile_processing(graphs)


class TestOptimizationGoal:
    def test_valid_goals(self):
        assert OptimizationGoal.validate("end_to_end") == "end_to_end"
        assert OptimizationGoal.validate("processing") == "processing"

    def test_invalid_goal(self):
        with pytest.raises(ValueError):
            OptimizationGoal.validate("latency")


class TestSelector:
    def test_selection_returns_known_partitioner(self, trained_ease, profiler):
        graph = generate_realworld_graph("soc", 200, 1200, seed=5)
        result = trained_ease.select_partitioner(graph, "pagerank", 4)
        assert result.selected in profiler.partitioner_names

    def test_scores_cover_all_candidates(self, trained_ease, profiler):
        graph = generate_rmat(200, 1200, seed=6)
        result = trained_ease.select_partitioner(graph, "pagerank", 4)
        assert {s.partitioner for s in result.scores} == set(profiler.partitioner_names)

    def test_ranking_is_sorted(self, trained_ease):
        graph = generate_rmat(200, 1200, seed=7)
        result = trained_ease.select_partitioner(graph, "pagerank", 4)
        ranking = result.ranking()
        objectives = [score.objective(result.goal) for score in ranking]
        assert objectives == sorted(objectives)
        assert ranking[0].partitioner == result.selected

    def test_end_to_end_adds_partitioning_time(self, trained_ease):
        graph = generate_rmat(200, 1200, seed=8)
        result = trained_ease.select_partitioner(graph, "pagerank", 4)
        for score in result.scores:
            assert score.predicted_end_to_end_seconds == pytest.approx(
                score.predicted_partitioning_seconds
                + score.predicted_processing_seconds)

    def test_score_of_lookup(self, trained_ease):
        graph = generate_rmat(200, 1200, seed=9)
        result = trained_ease.select_partitioner(graph, "pagerank", 4)
        assert result.score_of("ne").partitioner == "ne"
        with pytest.raises(KeyError):
            result.score_of("metis")

    def test_processing_goal_ignores_partitioning_time(self, trained_ease):
        graph = generate_rmat(256, 2000, seed=10)
        processing = trained_ease.select_partitioner(
            graph, "synthetic_high", 4, goal=OptimizationGoal.PROCESSING)
        scores = {s.partitioner: s for s in processing.scores}
        best = min(scores.values(), key=lambda s: s.predicted_processing_seconds)
        assert processing.selected == best.partitioner

    def test_facade_prediction_helpers(self, trained_ease):
        graph = generate_rmat(200, 1500, seed=11)
        quality = trained_ease.predict_quality(graph, "ne", 4)
        assert quality.replication_factor >= 1.0
        assert trained_ease.predict_partitioning_seconds(graph, "ne") > 0
        assert trained_ease.predict_processing_seconds(graph, "ne", "pagerank", 4) > 0

    def test_untrained_facade_raises(self):
        with pytest.raises(RuntimeError):
            _ = EASE().selector


class TestStrategyEvaluation:
    def test_jobs_cover_graph_algorithm_pairs(self, trained_ease,
                                              evaluation_dataset):
        evaluator = SelectionStrategyEvaluator(trained_ease.selector)
        jobs = evaluator.build_jobs(evaluation_dataset)
        assert len(jobs) == 2 * 3  # 2 graphs x 3 algorithms
        for job in jobs:
            assert len(job.processing_seconds) == 4

    def test_strategy_ordering_invariants(self, trained_ease, evaluation_dataset):
        evaluator = SelectionStrategyEvaluator(trained_ease.selector)
        comparisons = evaluator.compare(evaluation_dataset)
        assert comparisons
        for comparison in comparisons:
            seconds = comparison.strategy_seconds
            # The oracle is never beaten and the worst strategy never wins.
            assert seconds["SO"] <= seconds["SPS"] + 1e-12
            assert seconds["SO"] <= seconds["SSRF"] + 1e-12
            assert seconds["SW"] >= seconds["SR"] - 1e-12
            assert comparison.optimal_pick_fraction["SO"] == pytest.approx(1.0)

    def test_relative_to_helper(self, trained_ease, evaluation_dataset):
        evaluator = SelectionStrategyEvaluator(trained_ease.selector)
        comparison = evaluator.compare(evaluation_dataset)[0]
        ratio = comparison.relative_to("SPS", "SW")
        assert ratio == pytest.approx(
            comparison.strategy_seconds["SPS"] / comparison.strategy_seconds["SW"])

    def test_algorithm_filter(self, trained_ease, evaluation_dataset):
        evaluator = SelectionStrategyEvaluator(trained_ease.selector)
        comparisons = evaluator.compare(evaluation_dataset,
                                        algorithms=("pagerank",),
                                        goals=(OptimizationGoal.PROCESSING,))
        assert len(comparisons) == 1
        assert comparisons[0].algorithm == "pagerank"


class TestPerTypeMapeMatrix:
    def test_matrix_keys_and_values(self, trained_ease, evaluation_dataset):
        matrix = per_type_mape_matrix(trained_ease.quality_predictor,
                                      evaluation_dataset.quality,
                                      metric="replication_factor")
        types = {key[0] for key in matrix}
        partitioners = {key[1] for key in matrix}
        assert types == {"soc", "wiki"}
        assert partitioners == {"2d", "dbh", "ne", "hdrf"}
        assert all(value >= 0 for value in matrix.values())
