"""Tests for approximate-mode property extraction in the serving stack.

``properties_mode="approximate"`` must flow end to end — request
validation, bounded extraction, per-mode caching, per-request counters, and
the ``properties_extraction`` payload of the HTTP frontend — without
perturbing exact-mode behaviour or its caches.
"""

import threading

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.graph import GraphProperties, compute_properties
from repro.graph.property_engine import _oriented_pair_count
from repro.graph.sketches import DEFAULT_WEDGE_BUDGET
from repro.ease import EASE, GraphProfiler
from repro.serving import (
    ModelRegistry,
    SelectionClient,
    SelectionHTTPServer,
    SelectionService,
)
from repro.serving.client import SelectionServiceError

PARTITIONERS = ("2d", "dbh", "ne")

#: Budget small enough that the hub-heavy query graph must sample.
SMALL_BUDGET = 500


@pytest.fixture(scope="module")
def trained_system():
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(4)]
    return EASE(partitioner_names=PARTITIONERS).train(
        profiler.profile(graphs, graphs))


@pytest.fixture(scope="module")
def big_graph():
    """Query graph whose exact wedge enumeration overflows SMALL_BUDGET."""
    graph = generate_rmat(256, 2000, seed=1)
    assert _oriented_pair_count(graph) > SMALL_BUDGET
    return graph


@pytest.fixture(scope="module")
def small_graph():
    """Query graph that fits inside SMALL_BUDGET (exact shortcut)."""
    graph = generate_rmat(48, 150, seed=2)
    assert _oriented_pair_count(graph) <= SMALL_BUDGET
    return graph


def _service(trained_system, **kwargs):
    kwargs.setdefault("approximate_wedge_budget", SMALL_BUDGET)
    return SelectionService(trained_system, **kwargs)


class TestServiceConfiguration:
    def test_default_budget(self, trained_system):
        assert (SelectionService(trained_system).approximate_wedge_budget
                == DEFAULT_WEDGE_BUDGET)

    @pytest.mark.parametrize("budget", [0, -10])
    def test_invalid_budget_rejected(self, trained_system, budget):
        with pytest.raises(ValueError):
            SelectionService(trained_system,
                             approximate_wedge_budget=budget)

    def test_health_reports_budget_and_counters(self, trained_system):
        health = _service(trained_system).health()
        assert health["approximate_wedge_budget"] == SMALL_BUDGET
        assert health["stats"]["approximate_hits"] == 0
        assert health["stats"]["budget_exhausted"] == 0


class TestApproximateSelection:
    def test_select_validates_mode(self, trained_system, big_graph):
        service = _service(trained_system)
        with pytest.raises(ValueError):
            service.select(big_graph, "pagerank", 2, properties_mode="fuzzy")

    def test_approximate_select_returns_valid_choice(self, trained_system,
                                                     big_graph):
        result = _service(trained_system).select(
            big_graph, "pagerank", 2, properties_mode="approximate")
        assert result.selected in PARTITIONERS

    def test_counters_track_every_approximate_request(self, trained_system,
                                                      big_graph):
        service = _service(trained_system)
        service.select(big_graph, "pagerank", 2,
                       properties_mode="approximate")
        assert service.stats.approximate_hits == 1
        assert service.stats.budget_exhausted == 1  # sampling engaged
        # A repeat is served from the property cache but still counts: the
        # counters track requests answered on estimates, not extractions.
        service.select(big_graph, "pagerank", 2,
                       properties_mode="approximate")
        assert service.stats.approximate_hits == 2
        assert service.stats.budget_exhausted == 2
        assert service.stats.property_cache_hits >= 1

    def test_exact_requests_leave_counters_alone(self, trained_system,
                                                 big_graph):
        service = _service(trained_system)
        service.select(big_graph, "pagerank", 2)
        service.select(big_graph, "pagerank", 2, properties_mode="exact")
        assert service.stats.approximate_hits == 0
        assert service.stats.budget_exhausted == 0

    def test_exact_within_budget_not_counted_exhausted(self, trained_system,
                                                       small_graph):
        service = _service(trained_system)
        service.select(small_graph, "pagerank", 2,
                       properties_mode="approximate")
        assert service.stats.approximate_hits == 1
        assert service.stats.budget_exhausted == 0


class TestResolveWithInfo:
    def test_approximate_info_payload(self, trained_system, big_graph):
        service = _service(trained_system)
        properties, info = service.resolve_properties_with_info(
            big_graph, "approximate")
        assert isinstance(properties, GraphProperties)
        assert info["mode"] == "approximate"
        assert info["wedge_budget"] == SMALL_BUDGET
        assert info["budget_exhausted"] is True and info["exact"] is False
        estimate = info["mean_triangles"]
        assert estimate["lower"] <= estimate["value"] <= estimate["upper"]
        assert properties.mean_triangles == estimate["value"]

    def test_exact_shortcut_info(self, trained_system, small_graph):
        service = _service(trained_system)
        _, info = service.resolve_properties_with_info(small_graph,
                                                       "approximate")
        assert info["exact"] is True and info["budget_exhausted"] is False
        estimate = info["mean_triangles"]
        assert estimate["lower"] == estimate["value"] == estimate["upper"]

    def test_exact_mode_has_no_info(self, trained_system, small_graph):
        service = _service(trained_system)
        _, info = service.resolve_properties_with_info(small_graph, "exact")
        assert info is None

    def test_precomputed_properties_pass_through(self, trained_system,
                                                 big_graph):
        service = _service(trained_system)
        precomputed = compute_properties(big_graph, exact_triangles=False)
        resolved, info = service.resolve_properties_with_info(
            precomputed, "approximate")
        assert resolved is precomputed and info is None
        assert service.stats.approximate_hits == 0  # nothing was estimated


class TestModeCacheSeparation:
    def test_property_cache_keeps_modes_apart(self, trained_system,
                                              big_graph):
        service = _service(trained_system)
        exact = service.resolve_properties(big_graph, "exact")
        approx = service.resolve_properties(big_graph, "approximate")
        assert len(service._properties) == 2
        assert exact.mean_triangles != approx.mean_triangles \
            or exact is not approx
        # Each mode hits its own entry on repeat.
        assert service.resolve_properties(big_graph, "exact") is exact
        assert service.resolve_properties(big_graph, "approximate") is approx

    def test_result_cache_keeps_modes_apart(self, trained_system, big_graph):
        service = _service(trained_system)
        service.select(big_graph, "pagerank", 2)
        service.select(big_graph, "pagerank", 2,
                       properties_mode="approximate")
        assert len(service._results) == 2

    def test_batch_accepts_per_graph_modes(self, trained_system, big_graph,
                                           small_graph):
        service = _service(trained_system)
        resolved = service.resolve_properties_batch(
            [big_graph, small_graph], ["approximate", "exact"])
        assert len(resolved) == 2
        assert service.stats.approximate_hits == 1
        with pytest.raises(ValueError):
            service.resolve_properties_batch([big_graph], ["fuzzy"])


# --------------------------------------------------------------------------- #
# HTTP frontend
# --------------------------------------------------------------------------- #
@pytest.fixture()
def live_server(tmp_path, trained_system):
    registry = ModelRegistry(str(tmp_path / "registry"))
    entry = registry.publish(trained_system, "ease")
    registry.promote("ease", entry.version)
    service = SelectionService.from_registry(
        registry, "ease", batch_wait_seconds=0.001,
        approximate_wedge_budget=SMALL_BUDGET)
    server = SelectionHTTPServer(service, registry=registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    with server:
        thread.start()
        yield server
        server.shutdown()
    thread.join(timeout=5)


class TestHTTPApproximate:
    def test_select_carries_extraction_payload(self, live_server, big_graph):
        client = SelectionClient(live_server.url)
        response = client.select(big_graph, "pagerank", 2,
                                 properties_mode="approximate")
        assert response["selected"] in PARTITIONERS
        extraction = response["properties_extraction"]
        assert extraction["mode"] == "approximate"
        assert extraction["wedge_budget"] == SMALL_BUDGET
        assert extraction["budget_exhausted"] is True
        bounds = extraction["global_clustering"]
        assert bounds["lower"] <= bounds["value"] <= bounds["upper"]

    def test_exact_select_has_no_extraction_payload(self, live_server,
                                                    big_graph):
        response = SelectionClient(live_server.url).select(
            big_graph, "pagerank", 2)
        assert "properties_extraction" not in response

    def test_predict_supports_approximate(self, live_server, big_graph):
        response = SelectionClient(live_server.url).predict(
            big_graph, "pagerank", 2, properties_mode="approximate")
        assert len(response["predictions"]) == len(PARTITIONERS)
        assert response["properties_extraction"]["mode"] == "approximate"

    def test_invalid_mode_is_bad_request(self, live_server, big_graph):
        client = SelectionClient(live_server.url)
        with pytest.raises(SelectionServiceError) as excinfo:
            client.select(big_graph, "pagerank", 2, properties_mode="fuzzy")
        assert excinfo.value.status == 400

    def test_healthz_surfaces_counters(self, live_server, big_graph):
        client = SelectionClient(live_server.url)
        client.select(big_graph, "pagerank", 2,
                      properties_mode="approximate")
        health = client.health()
        assert health["approximate_wedge_budget"] == SMALL_BUDGET
        assert health["stats"]["approximate_hits"] == 1
        assert health["stats"]["budget_exhausted"] == 1
