"""Tests for the memory-mapped graph store: on-disk CSR round trips,
zero-copy worker shipping, fingerprint serving and the graph CLI."""

import json
import os
import tempfile
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import generate_rmat
from repro.graph import (
    Graph,
    GraphStore,
    GraphStoreError,
    compute_properties,
    graph_fingerprint,
    open_stored_graph,
    save_npz,
)
from repro.ease import EASE, GraphProfiler
from repro.partitioning import create_partitioner
from repro.runtime.backends import (
    _SHIP_ARRAYS,
    _SHIP_STORE,
    _graph_from_arrays,
    _graph_to_arrays,
)
from repro.cli import main

PARTITIONERS = ("2d", "dbh", "hdrf")


def _sample_graph(name="sample"):
    return generate_rmat(64, 400, seed=3, graph_type="rmat") \
        if name == "rmat" else Graph(
            np.array([0, 1, 2, 0, 3, 3], dtype=np.int64),
            np.array([1, 2, 0, 2, 1, 3], dtype=np.int64),
            num_vertices=5, name=name)


def _assert_csr_equal(lhs, rhs):
    np.testing.assert_array_equal(np.asarray(lhs.indptr),
                                  np.asarray(rhs.indptr))
    np.testing.assert_array_equal(np.asarray(lhs.indices),
                                  np.asarray(rhs.indices))
    np.testing.assert_array_equal(np.asarray(lhs.edge_ids),
                                  np.asarray(rhs.edge_ids))


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #
class TestStoreRoundTrip:
    def test_save_open_preserves_arrays_and_labels(self, tmp_path):
        graph = generate_rmat(96, 700, seed=5, graph_type="rmat")
        store = GraphStore(str(tmp_path))
        fingerprint = store.save(graph)
        reopened = store.open(fingerprint)
        assert reopened.is_mapped
        assert reopened.store_path == store.path_for(fingerprint)
        assert reopened.num_vertices == graph.num_vertices
        assert reopened.name == graph.name
        assert reopened.graph_type == graph.graph_type
        np.testing.assert_array_equal(np.asarray(reopened.src), graph.src)
        np.testing.assert_array_equal(np.asarray(reopened.dst), graph.dst)

    def test_open_attaches_precomputed_adjacency(self, tmp_path):
        graph = _sample_graph()
        store = GraphStore(str(tmp_path))
        reopened = store.open(store.save(graph))
        # The CSR views are attached from the mapped files at open time,
        # not rebuilt on first use.
        assert reopened._out_adj is not None
        assert reopened._in_adj is not None
        assert reopened._undirected_simple_adj is not None
        _assert_csr_equal(reopened.csr(), graph.csr())
        _assert_csr_equal(reopened.csr_in(), graph.csr_in())
        und, und_ref = (reopened.undirected_simple_csr(),
                        graph.undirected_simple_csr())
        np.testing.assert_array_equal(np.asarray(und.indptr), und_ref.indptr)
        np.testing.assert_array_equal(np.asarray(und.indices),
                                      und_ref.indices)
        assert und.edge_ids.size == 0

    def test_fingerprint_is_stored_and_stable(self, tmp_path):
        graph = _sample_graph()
        store = GraphStore(str(tmp_path / "a"))
        other = GraphStore(str(tmp_path / "b"))
        fingerprint = store.save(graph)
        assert fingerprint == graph_fingerprint(graph)
        assert other.save(graph) == fingerprint
        reopened = store.open(fingerprint)
        assert reopened.stored_fingerprint == fingerprint
        # O(1) on mapped graphs: the stored hash is returned as-is.
        assert graph_fingerprint(reopened) == fingerprint

    def test_save_is_idempotent(self, tmp_path):
        graph = _sample_graph()
        store = GraphStore(str(tmp_path))
        fingerprint = store.save(graph)
        meta_path = os.path.join(store.path_for(fingerprint), "meta.json")
        before = os.path.getmtime(meta_path)
        assert store.save(graph) == fingerprint
        assert os.path.getmtime(meta_path) == before
        assert len(store.list()) == 1

    def test_open_by_direct_path(self, tmp_path):
        graph = _sample_graph()
        store = GraphStore(str(tmp_path / "store"))
        fingerprint = store.save(graph)
        entry = store.path_for(fingerprint)
        reopened = open_stored_graph(entry)
        np.testing.assert_array_equal(np.asarray(reopened.src), graph.src)
        # A store resolves a directory path even if it is not one of its
        # own fingerprints (workers receive bare paths).
        foreign = GraphStore(str(tmp_path / "elsewhere"))
        np.testing.assert_array_equal(np.asarray(foreign.open(entry).dst),
                                      graph.dst)

    def test_unknown_fingerprint_raises(self, tmp_path):
        store = GraphStore(str(tmp_path))
        with pytest.raises(GraphStoreError, match="no graph"):
            store.open("0" * 20)
        assert "0" * 20 not in store

    def test_list_and_disk_usage(self, tmp_path):
        store = GraphStore(str(tmp_path))
        graphs = [generate_rmat(48, 200 + 60 * s, seed=s) for s in range(3)]
        for graph in graphs:
            store.save(graph)
        infos = store.list()
        assert len(infos) == 3
        assert {info.num_edges for info in infos} == \
            {g.num_edges for g in graphs}
        assert all(info.nbytes > 0 for info in infos)
        usage = store.disk_usage()
        assert usage["graphs"] == 3
        assert usage["bytes"] == sum(info.nbytes for info in infos)
        opened = store.open_all()
        assert [g.name for g in opened] == sorted(g.name for g in graphs)

    @settings(max_examples=25, deadline=None)
    @given(edges=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                          min_size=0, max_size=60),
           extra_vertices=st.integers(0, 4))
    def test_mapped_equals_in_ram(self, edges, extra_vertices):
        """Partitioning, properties and CSR views are array-identical
        between a graph and its store-backed reopening."""
        if edges:
            arr = np.asarray(edges, dtype=np.int64)
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = dst = np.empty(0, dtype=np.int64)
        num_vertices = int(max(src.max(initial=-1),
                               dst.max(initial=-1)) + 1 + extra_vertices)
        graph = Graph(src, dst, num_vertices=num_vertices, name="prop")
        with tempfile.TemporaryDirectory() as tmp_dir:
            store = GraphStore(tmp_dir)
            reopened = store.open(store.save(graph))
            self._check_identical(graph, reopened, num_vertices)

    def _check_identical(self, graph, reopened, num_vertices):
        _assert_csr_equal(reopened.csr(), graph.csr())
        _assert_csr_equal(reopened.csr_in(), graph.csr_in())
        assert compute_properties(reopened, seed=7) == \
            compute_properties(graph, seed=7)
        if num_vertices:
            for name in PARTITIONERS:
                lhs = create_partitioner(name).partition(graph, 2)
                rhs = create_partitioner(name).partition(reopened, 2)
                np.testing.assert_array_equal(lhs.assignment, rhs.assignment)


# --------------------------------------------------------------------------- #
# Edge cases and corruption
# --------------------------------------------------------------------------- #
class TestEdgeCases:
    def test_empty_graph(self, tmp_path):
        store = GraphStore(str(tmp_path))
        for graph in (Graph.empty(0), Graph.empty(7, name="isolated")):
            reopened = store.open(store.save(graph))
            assert reopened.num_edges == 0
            assert reopened.num_vertices == graph.num_vertices
            assert reopened.csr().degrees().sum() == 0
            assert graph_fingerprint(reopened) == graph_fingerprint(graph)

    def test_trailing_isolated_vertices(self, tmp_path):
        graph = Graph(np.array([0, 1], dtype=np.int64),
                      np.array([1, 0], dtype=np.int64), num_vertices=9)
        store = GraphStore(str(tmp_path))
        reopened = store.open(store.save(graph))
        assert reopened.num_vertices == 9
        assert reopened.csr().indptr.shape == (10,)
        assert reopened.csr().degree(8) == 0
        # The isolated tail changes the content fingerprint.
        smaller = Graph(graph.src, graph.dst, num_vertices=2)
        assert graph_fingerprint(smaller) != graph_fingerprint(graph)

    def test_duplicate_and_self_loop_edges(self, tmp_path):
        graph = Graph(np.array([0, 0, 0, 1, 2, 2], dtype=np.int64),
                      np.array([1, 1, 0, 1, 0, 0], dtype=np.int64),
                      num_vertices=3)
        store = GraphStore(str(tmp_path))
        reopened = store.open(store.save(graph))
        assert reopened.num_edges == 6  # duplicates and loops are content
        _assert_csr_equal(reopened.csr(), graph.csr())
        und = reopened.undirected_simple_csr()
        ref = graph.undirected_simple_csr()
        np.testing.assert_array_equal(np.asarray(und.indices), ref.indices)

    def test_mapped_arrays_are_read_only(self, tmp_path):
        store = GraphStore(str(tmp_path))
        reopened = store.open(store.save(_sample_graph()))
        with pytest.raises(ValueError):
            reopened.src[0] = 99
        with pytest.raises(ValueError):
            reopened.csr().indices[0] = 99

    def test_missing_meta_raises(self, tmp_path):
        (tmp_path / "entry").mkdir()
        with pytest.raises(GraphStoreError, match="meta.json is missing"):
            open_stored_graph(str(tmp_path / "entry"))

    def test_corrupted_meta_raises(self, tmp_path):
        store = GraphStore(str(tmp_path))
        entry = store.path_for(store.save(_sample_graph()))
        meta_path = os.path.join(entry, "meta.json")
        with open(meta_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(GraphStoreError, match="corrupted"):
            open_stored_graph(entry)

    def test_wrong_format_version_raises(self, tmp_path):
        store = GraphStore(str(tmp_path))
        entry = store.path_for(store.save(_sample_graph()))
        meta_path = os.path.join(entry, "meta.json")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["format_version"] = 999
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        with pytest.raises(GraphStoreError, match="format version"):
            open_stored_graph(entry)

    def test_truncated_bin_raises_named_error(self, tmp_path):
        store = GraphStore(str(tmp_path))
        entry = store.path_for(store.save(_sample_graph()))
        dst_path = os.path.join(entry, "dst.bin")
        with open(dst_path, "r+b") as handle:
            handle.truncate(os.path.getsize(dst_path) - 8)
        with pytest.raises(GraphStoreError, match="dst.bin"):
            open_stored_graph(entry)

    def test_missing_bin_raises_named_error(self, tmp_path):
        store = GraphStore(str(tmp_path))
        entry = store.path_for(store.save(_sample_graph()))
        os.remove(os.path.join(entry, "out_indices.bin"))
        with pytest.raises(GraphStoreError, match="out_indices.bin"):
            open_stored_graph(entry)

    def test_corrupted_entries_are_skipped_by_list(self, tmp_path):
        store = GraphStore(str(tmp_path))
        good = store.save(_sample_graph())
        bad = store.save(generate_rmat(32, 100, seed=9))
        os.remove(os.path.join(store.path_for(bad), "meta.json"))
        infos = store.list()
        assert [info.fingerprint for info in infos] == [good]


# --------------------------------------------------------------------------- #
# Worker shipping round trips
# --------------------------------------------------------------------------- #
class TestBackendShipping:
    def test_store_graph_ships_as_path_reference(self, tmp_path):
        store = GraphStore(str(tmp_path))
        graph = store.open(store.save(_sample_graph()))
        shipped = _graph_to_arrays(graph)
        assert shipped[0] == _SHIP_STORE
        assert shipped[1] == graph.store_path
        rebuilt = _graph_from_arrays(shipped)
        assert rebuilt.is_mapped
        # The mapped round trip preserves the attached adjacency: nothing
        # the save step precomputed is rebuilt worker-side.
        assert rebuilt._out_adj is not None
        assert rebuilt._in_adj is not None
        assert rebuilt._undirected_simple_adj is not None
        _assert_csr_equal(rebuilt.csr(), graph.csr())
        assert graph_fingerprint(rebuilt) == graph_fingerprint(graph)

    def test_in_ram_fallback_recomputes_adjacency(self):
        graph = _sample_graph()
        graph.csr(), graph.csr_in()  # populate the parent's caches
        shipped = _graph_to_arrays(graph)
        assert shipped[0] == _SHIP_ARRAYS
        rebuilt = _graph_from_arrays(shipped)
        assert not rebuilt.is_mapped
        # The fallback deliberately ships only the edge arrays: cached
        # views are dropped and rebuilt lazily worker-side.
        assert rebuilt._out_adj is None
        assert rebuilt._in_adj is None
        _assert_csr_equal(rebuilt.csr(), graph.csr())
        _assert_csr_equal(rebuilt.csr_in(), graph.csr_in())

    @pytest.mark.parametrize("backend", ["process", "worker"])
    def test_parallel_profile_matches_inline(self, tmp_path, backend):
        graphs = [generate_rmat(80, 350 + 90 * s, seed=s, graph_type="rmat")
                  for s in range(2)]
        store = GraphStore(str(tmp_path / "store"))
        for graph in graphs:
            store.save(graph)
        mapped = store.open_all()

        def profile(corpus, jobs=1, backend_name=None):
            profiler = GraphProfiler(partitioner_names=("dbh", "2d"),
                                     partition_counts=(2,),
                                     processing_partition_count=2,
                                     algorithms=("pagerank",), jobs=jobs,
                                     backend=backend_name)
            return profiler.profile(corpus, corpus)

        reference = profile(graphs)
        parallel = profile(mapped, jobs=2, backend_name=backend)
        assert parallel.summary() == reference.summary()
        assert parallel.quality == reference.quality
        assert parallel.partitioning_time == reference.partitioning_time
        assert parallel.processing == reference.processing


# --------------------------------------------------------------------------- #
# Serving by fingerprint
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def trained_system():
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(3)]
    return EASE(partitioner_names=PARTITIONERS).train(
        profiler.profile(graphs, graphs))


class TestServingByFingerprint:
    def test_resolve_requires_a_store(self, trained_system):
        from repro.serving import SelectionService

        service = SelectionService(trained_system)
        with pytest.raises(ValueError, match="graph store"):
            service.resolve_graph("0" * 20)

    def test_resolve_opens_and_caches(self, trained_system, tmp_path):
        from repro.serving import SelectionService

        store = GraphStore(str(tmp_path))
        fingerprint = store.save(generate_rmat(64, 400, seed=11))
        service = SelectionService(trained_system,
                                   graph_store=str(tmp_path))
        graph = service.resolve_graph(fingerprint)
        assert graph.is_mapped
        assert service.resolve_graph(fingerprint) is graph
        with pytest.raises(ValueError, match="no graph"):
            service.resolve_graph("f" * 20)

    def test_parse_payload_fingerprint(self):
        from repro.serving.http import BadRequest, parse_graph_payload

        sentinel = _sample_graph()
        resolved = parse_graph_payload({"graph_fingerprint": "abc"},
                                       resolver=lambda fp: sentinel)
        assert resolved is sentinel
        with pytest.raises(BadRequest, match="no graph store"):
            parse_graph_payload({"graph_fingerprint": "abc"})
        with pytest.raises(BadRequest, match="exactly one"):
            parse_graph_payload({"graph_fingerprint": "abc",
                                 "graph": {"src": [], "dst": []}})
        with pytest.raises(BadRequest, match="non-empty"):
            parse_graph_payload({"graph_fingerprint": ""},
                                resolver=lambda fp: sentinel)

        def failing(fingerprint):
            raise ValueError("unknown fingerprint")

        with pytest.raises(BadRequest, match="unknown fingerprint"):
            parse_graph_payload({"graph_fingerprint": "abc"},
                                resolver=failing)

    def test_client_builds_fingerprint_payload(self):
        from repro.serving.client import _graph_payload

        assert _graph_payload("abc123") == {"graph_fingerprint": "abc123"}

    def test_http_select_by_fingerprint(self, trained_system, tmp_path):
        from repro.serving import (
            SelectionClient,
            SelectionHTTPServer,
            SelectionService,
        )
        from repro.serving.client import SelectionServiceError

        graph = generate_rmat(128, 900, seed=21, graph_type="rmat")
        store = GraphStore(str(tmp_path))
        fingerprint = store.save(graph)
        service = SelectionService(trained_system, graph_store=store,
                                   batch_wait_seconds=0.001)
        server = SelectionHTTPServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        with server:
            thread.start()
            client = SelectionClient(server.url)
            by_fingerprint = client.select(fingerprint, "pagerank", 2)
            by_arrays = client.select(graph, "pagerank", 2)
            assert by_fingerprint["selected"] == by_arrays["selected"]
            assert by_fingerprint["scores"] == by_arrays["scores"]
            with pytest.raises(SelectionServiceError) as excinfo:
                client.select("0" * 20, "pagerank", 2)
            assert excinfo.value.status == 400
            server.shutdown()
        thread.join(timeout=5)

    def test_http_fingerprint_without_store_is_rejected(self,
                                                        trained_system):
        from repro.serving import (
            SelectionClient,
            SelectionHTTPServer,
            SelectionService,
        )
        from repro.serving.client import SelectionServiceError

        service = SelectionService(trained_system,
                                   batch_wait_seconds=0.001)
        server = SelectionHTTPServer(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        with server:
            thread.start()
            client = SelectionClient(server.url)
            with pytest.raises(SelectionServiceError) as excinfo:
                client.select("0" * 20, "pagerank", 2)
            assert excinfo.value.status == 400
            assert "no graph store" in excinfo.value.message
            server.shutdown()
        thread.join(timeout=5)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestGraphCLI:
    def _write_inputs(self, tmp_path):
        graphs = [generate_rmat(48, 220 + 70 * s, seed=s, graph_type="rmat")
                  for s in range(2)]
        inputs_dir = tmp_path / "inputs"
        inputs_dir.mkdir()
        paths = []
        for graph in graphs:
            path = str(inputs_dir / f"{graph.name}.npz")
            save_npz(graph, path)
            paths.append(path)
        return graphs, paths, str(inputs_dir)

    def test_import_and_ls(self, tmp_path, capsys):
        graphs, paths, _ = self._write_inputs(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["graph", "import", *paths, "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "imported 2 graphs" in out
        for graph in graphs:
            assert graph_fingerprint(graph) in out

        # A re-import is a no-op (content addressing).
        assert main(["graph", "import", paths[0], "--store", store_dir]) == 0
        assert "1 already present" in capsys.readouterr().out

        assert main(["graph", "ls", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "2 graphs" in out
        for graph in graphs:
            assert graph_fingerprint(graph) in out
            assert str(graph.num_edges) in out

    def test_ls_missing_store(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["graph", "ls", "--store", str(tmp_path / "nope")])

    def test_profile_from_store_matches_directory(self, tmp_path, capsys):
        _, paths, inputs_dir = self._write_inputs(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["graph", "import", *paths, "--store", store_dir]) == 0
        capsys.readouterr()

        flags = ["--partitioners", "dbh", "--partition-counts", "2",
                 "--processing-partitions", "2", "--algorithms", "pagerank"]
        from_store = str(tmp_path / "store.pkl")
        from_dir = str(tmp_path / "dir.pkl")
        assert main(["profile", "--graph-store", store_dir,
                     "--output", from_store, *flags]) == 0
        assert main(["profile", "--graphs", inputs_dir,
                     "--output", from_dir, *flags]) == 0

        from repro.ease.persistence import load_dataset

        lhs, rhs = load_dataset(from_store), load_dataset(from_dir)
        assert lhs.summary() == rhs.summary()
        assert lhs.quality == rhs.quality
        assert lhs.processing == rhs.processing

    def test_profile_requires_a_graph_source(self, tmp_path):
        with pytest.raises(SystemExit, match="at least one"):
            main(["profile", "--output", str(tmp_path / "out.pkl")])

    def test_properties_from_store(self, tmp_path, capsys):
        graphs, paths, _ = self._write_inputs(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["graph", "import", *paths, "--store", store_dir]) == 0
        output = str(tmp_path / "props")
        assert main(["properties", "--graph-store", store_dir,
                     "--output", output]) == 0
        for graph in graphs:
            path = os.path.join(output, f"{graph.name}.properties.json")
            with open(path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            expected = compute_properties(graph, exact_triangles=False,
                                          seed=0).as_dict()
            assert stored == expected

    def test_cache_gc_reports_graph_store(self, tmp_path, capsys):
        _, paths, _ = self._write_inputs(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["graph", "import", *paths, "--store", store_dir]) == 0
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", str(cache_dir),
                     "--max-bytes", "0", "--graph-store", store_dir]) == 0
        out = capsys.readouterr().out
        assert f"graph store {store_dir}" in out
        assert "2 graphs" in out

    def test_serve_rejects_missing_store(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["serve", "--model", "irrelevant.pkl",
                  "--graph-store", str(tmp_path / "nope")])
