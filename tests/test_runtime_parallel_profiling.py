"""Parity, caching and resume tests of the job-based profiling runtime.

The contract under test: profiling through the runtime — sequentially, on a
process pool, from a warm artifact cache, or resumed from a checkpoint —
produces a ``ProfileDataset`` identical to the original sequential profiler
loops, while never partitioning the same ``(graph, partitioner, k)``
combination twice in one run.
"""

import os

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.graph import Graph, compute_properties
from repro.partitioning import compute_quality_metrics, create_partitioner
from repro.processing import ProcessingEngine, create_algorithm
from repro.ease import EASE, GraphProfiler, ProfileDataset
from repro.ease.dataset import (
    PartitioningTimeRecord,
    ProcessingRecord,
    QualityRecord,
)
from repro.ease.partitioning_cost import PartitioningCostModel
from repro.ease.persistence import (
    append_dataset,
    canonical_sorted,
    load_dataset,
    merge_datasets,
    save_dataset,
)
from repro.runtime import ArtifactStore, graph_fingerprint
from repro.runtime.executor import load_checkpoint, save_checkpoint
from repro.cli import main

PARTITIONERS = ("2d", "dbh", "hdrf")
PARTITION_COUNTS = (2, 4)
PROCESSING_K = 2
ALGORITHMS = ("pagerank", "connected_components")
SEED = 0


@pytest.fixture(scope="module")
def graphs():
    return [generate_rmat(128, 700, seed=s, graph_type="rmat")
            for s in range(3)]


def make_profiler(**kwargs):
    return GraphProfiler(partitioner_names=PARTITIONERS,
                         partition_counts=PARTITION_COUNTS,
                         processing_partition_count=PROCESSING_K,
                         algorithms=ALGORITHMS, seed=SEED, **kwargs)


def seed_path_reference(graphs) -> ProfileDataset:
    """The original sequential profiler loops, replicated literally.

    ``profile(graphs, graphs)`` of the seed implementation: the quality grid
    over every ``(graph, partitioner, k)``, then the processing phase which
    re-partitions every graph at the processing ``k``.
    """
    cost_model = PartitioningCostModel()
    engine = ProcessingEngine(None)
    dataset = ProfileDataset()
    for graph in graphs:
        properties = compute_properties(graph, exact_triangles=False,
                                        seed=SEED)
        for name in PARTITIONERS:
            partitioner = create_partitioner(name, seed=SEED)
            for k in PARTITION_COUNTS:
                partition = partitioner(graph, k)
                metrics = compute_quality_metrics(partition).as_dict()
                dataset.quality.append(QualityRecord(
                    graph.name, graph.graph_type, properties, name, k,
                    metrics))
                dataset.partitioning_time.append(PartitioningTimeRecord(
                    graph.name, graph.graph_type, properties, name, k,
                    cost_model.estimate_seconds(graph, name, k)))
    for graph in graphs:
        properties = compute_properties(graph, exact_triangles=False,
                                        seed=SEED)
        for name in PARTITIONERS:
            partitioner = create_partitioner(name, seed=SEED)
            partition = partitioner(graph, PROCESSING_K)
            metrics = compute_quality_metrics(partition).as_dict()
            dataset.quality.append(QualityRecord(
                graph.name, graph.graph_type, properties, name, PROCESSING_K,
                metrics))
            dataset.partitioning_time.append(PartitioningTimeRecord(
                graph.name, graph.graph_type, properties, name, PROCESSING_K,
                cost_model.estimate_seconds(graph, name, PROCESSING_K)))
            for algorithm_name in ALGORITHMS:
                result = engine.run(partition,
                                    create_algorithm(algorithm_name,
                                                     seed=SEED))
                target = (result.average_iteration_seconds
                          if algorithm_name == "pagerank"
                          else result.total_seconds)
                dataset.processing.append(ProcessingRecord(
                    graph.name, graph.graph_type, properties, name,
                    PROCESSING_K, algorithm_name, metrics, target,
                    result.total_seconds, result.num_supersteps))
    return dataset


def assert_datasets_identical(actual: ProfileDataset,
                              expected: ProfileDataset) -> None:
    assert len(actual.quality) == len(expected.quality)
    assert len(actual.partitioning_time) == len(expected.partitioning_time)
    assert len(actual.processing) == len(expected.processing)
    for got, want in zip(actual.quality, expected.quality):
        assert got == want
    for got, want in zip(actual.partitioning_time,
                         expected.partitioning_time):
        assert got == want
    for got, want in zip(actual.processing, expected.processing):
        assert got == want


@pytest.fixture(scope="module")
def reference(graphs):
    return seed_path_reference(graphs)


@pytest.fixture(scope="module")
def parallel_state(graphs, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("artifact-cache"))
    profiler = make_profiler(jobs=2, cache_dir=cache_dir)
    dataset = profiler.profile(graphs, graphs)
    return profiler, dataset, cache_dir


class TestSequentialParity:
    def test_runtime_matches_seed_path(self, graphs, reference):
        profiler = make_profiler()
        assert_datasets_identical(profiler.profile(graphs, graphs), reference)

    def test_phase_methods_match_seed_path(self, graphs, reference):
        profiler = make_profiler()
        dataset = profiler.profile_quality(graphs)
        dataset.extend(profiler.profile_processing(graphs))
        assert_datasets_identical(dataset, reference)


class TestParallelCachedParity:
    def test_parallel_identical_to_sequential(self, parallel_state,
                                              reference):
        _, dataset, _ = parallel_state
        assert_datasets_identical(dataset, reference)
        assert_datasets_identical(canonical_sorted(dataset),
                                  canonical_sorted(reference))

    def test_no_combination_partitioned_twice(self, parallel_state, graphs):
        profiler, _, _ = parallel_state
        stats = profiler.last_run_stats
        unique = len(graphs) * len(PARTITIONERS) * len(PARTITION_COUNTS)
        enumerated = unique + len(graphs) * len(PARTITIONERS)
        assert stats.partition_slots_enumerated == enumerated
        assert stats.unique_partition_jobs == unique
        assert stats.partitions_computed == unique
        assert stats.duplicate_partitions_avoided == enumerated - unique

    def test_warm_cache_partitions_nothing(self, parallel_state, graphs,
                                           reference):
        profiler, _, cache_dir = parallel_state
        warm = make_profiler(jobs=2, cache_dir=cache_dir)
        assert_datasets_identical(warm.profile(graphs, graphs), reference)
        stats = warm.last_run_stats
        assert stats.partitions_computed == 0
        assert stats.executed_units == 0
        assert stats.cache_hit_rate() == 1.0

    def test_train_from_graphs_parallel_equals_sequential(self, graphs):
        subset = graphs[:2]
        sequential = EASE.train_from_graphs(
            subset, subset, profiler=make_profiler())
        parallel = EASE.train_from_graphs(
            subset, subset, profiler=make_profiler(), jobs=2)
        properties = compute_properties(subset[0], seed=SEED)
        for name in PARTITIONERS:
            lhs = sequential.predict_quality(properties, name, 2).as_dict()
            rhs = parallel.predict_quality(properties, name, 2).as_dict()
            for key in lhs:
                assert lhs[key] == pytest.approx(rhs[key])


class TestCheckpointResume:
    def test_resume_completes_partial_run(self, graphs, reference, tmp_path):
        checkpoint = str(tmp_path / "profile.checkpoint")
        profiler = make_profiler()
        full = profiler.profile(graphs, graphs, checkpoint_path=checkpoint)
        assert_datasets_identical(full, reference)

        # Drop every task of alternating units to simulate an interrupted
        # run (checkpoints are task-granular since the DAG refactor).
        payloads = load_checkpoint(checkpoint)
        unit_tasks = {}
        for key in payloads:
            if key[0] in ("quality", "processing",
                          "partitioning_time_task"):
                unit_tasks.setdefault(tuple(key[1:4]), []).append(key)
        dropped = sorted(unit_tasks)[::2]
        for unit_key in dropped:
            for key in unit_tasks[unit_key]:
                del payloads[key]
        save_checkpoint(checkpoint, payloads)

        resumed_profiler = make_profiler()
        resumed = resumed_profiler.profile(graphs, graphs,
                                           checkpoint_path=checkpoint)
        assert_datasets_identical(resumed, reference)
        stats = resumed_profiler.last_run_stats
        assert stats.checkpoint_units == len(unit_tasks) - len(dropped)
        assert stats.executed_units == len(dropped)

    def test_resume_mid_unit_skips_completed_tasks(self, graphs, reference,
                                                   tmp_path):
        checkpoint = str(tmp_path / "mid-unit.checkpoint")
        profiler = make_profiler()
        profiler.profile(graphs, graphs, checkpoint_path=checkpoint)

        # Drop only the processing tasks: the quality metrics and timing of
        # every unit stay checkpointed, so resuming executes the workloads
        # (plus the partitions they consume) but never re-measures quality.
        payloads = load_checkpoint(checkpoint)
        dropped = [key for key in payloads if key[0] == "processing"]
        for key in dropped:
            del payloads[key]
        save_checkpoint(checkpoint, payloads)

        resumed_profiler = make_profiler()
        resumed = resumed_profiler.profile(graphs, graphs,
                                           checkpoint_path=checkpoint)
        assert_datasets_identical(resumed, reference)
        stats = resumed_profiler.last_run_stats
        processing_units = len(graphs) * len(PARTITIONERS)
        assert stats.executed_units == processing_units
        assert stats.executed_tasks == len(dropped) + processing_units
        assert stats.partitions_computed == processing_units

    def test_corrupt_checkpoint_is_ignored(self, graphs, reference,
                                           tmp_path):
        checkpoint = tmp_path / "bad.checkpoint"
        checkpoint.write_bytes(b"not a pickle")
        profiler = make_profiler()
        dataset = profiler.profile(graphs, graphs,
                                   checkpoint_path=str(checkpoint))
        assert_datasets_identical(dataset, reference)


class TestRuntimePrimitives:
    def test_fingerprint_is_content_addressed(self, graphs):
        graph = graphs[0]
        twin = Graph(graph.src.copy(), graph.dst.copy(),
                     num_vertices=graph.num_vertices, name="other-name",
                     graph_type="web")
        assert graph_fingerprint(twin) == graph_fingerprint(graph)
        assert graph_fingerprint(graphs[1]) != graph_fingerprint(graph)

    def test_work_units_deduplicate_overlapping_phases(self, graphs):
        plan = make_profiler().build_plan(graphs, graphs)
        units = plan.work_units()
        assert len(units) == len(plan.unique_partition_jobs())
        assert len({(u.graph_fingerprint, u.partitioner, u.num_partitions)
                    for u in units}) == len(units)
        # The processing-k units carry the workloads of the processing phase.
        with_algorithms = [u for u in units if u.algorithms]
        assert len(with_algorithms) == len(graphs) * len(PARTITIONERS)
        assert all(u.num_partitions == PROCESSING_K for u in with_algorithms)

    def test_artifact_store_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = ("partition", "fingerprint", "2d", 4, 0)
        store.put(key, np.arange(5))
        fresh = ArtifactStore(str(tmp_path))
        assert key in fresh
        assert np.array_equal(fresh.get(key), np.arange(5))
        assert fresh.get(("partition", "missing", "2d", 4, 0)) is None

    def test_artifact_store_tolerates_corruption(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        key = ("quality", "fingerprint", "2d", 4, 0)
        store.put(key, {"replication_factor": 1.0})
        with open(store.path_for(key), "wb") as handle:
            handle.write(b"garbage")
        fresh = ArtifactStore(str(tmp_path))
        assert fresh.get(key) is None


class TestPartialDatasetPersistence:
    def test_merge_datasets(self, reference):
        halves = [ProfileDataset(), ProfileDataset()]
        halves[0].quality = reference.quality[:5]
        halves[1].quality = reference.quality[5:]
        halves[1].processing = list(reference.processing)
        merged = merge_datasets(halves)
        assert len(merged.quality) == len(reference.quality)
        assert len(merged.processing) == len(reference.processing)
        with pytest.raises(TypeError):
            merge_datasets([object()])

    def test_append_dataset(self, reference, tmp_path):
        path = str(tmp_path / "partial.pkl")
        first = ProfileDataset()
        first.quality = reference.quality[:4]
        append_dataset(first, path)
        second = ProfileDataset()
        second.quality = reference.quality[4:]
        combined = append_dataset(second, path)
        assert len(combined.quality) == len(reference.quality)
        assert len(load_dataset(path).quality) == len(reference.quality)

    def test_canonical_sorted_is_order_insensitive(self, reference):
        shuffled = ProfileDataset()
        shuffled.quality = list(reversed(reference.quality))
        shuffled.partitioning_time = list(
            reversed(reference.partitioning_time))
        shuffled.processing = list(reversed(reference.processing))
        assert_datasets_identical(canonical_sorted(shuffled),
                                  canonical_sorted(reference))


class TestCLIParallelProfiling:
    def test_profile_with_jobs_cache_and_resume(self, graphs, tmp_path,
                                                capsys):
        from repro.graph import save_npz

        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        for index, graph in enumerate(graphs[:2]):
            save_npz(graph, str(graphs_dir / f"g{index}.npz"))
        output = str(tmp_path / "profile.pkl")
        cache_dir = str(tmp_path / "cache")
        arguments = ["profile", "--graphs", str(graphs_dir),
                     "--output", output,
                     "--partitioners", "2d", "dbh",
                     "--algorithms", "pagerank",
                     "--partition-counts", "2",
                     "--processing-partitions", "2",
                     "--jobs", "2", "--cache-dir", cache_dir]
        assert main(arguments) == 0
        cold = load_dataset(output)
        assert not os.path.exists(output + ".checkpoint")

        assert main(arguments + ["--resume"]) == 0
        warm = load_dataset(output)
        assert_datasets_identical(warm, cold)
        assert "cache hit rate=100%" in capsys.readouterr().out
