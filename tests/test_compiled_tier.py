"""Tests for the optional compiled kernel tier (:mod:`repro._compiled`).

The compiled tier is held to an *identical results* contract, not a
statistical one: with the flag on, every partitioner assignment and every
triangle count must match the pure-numpy reference bit for bit.  Since numba
is an optional dependency the suite must prove that contract in both worlds:

* without numba, the kernel *sources* (plain Python under the no-op ``njit``
  stand-in) are routed through the real dispatch sites by patching
  ``numba_available`` — same code path production would take, minus the jit;
* with numba installed (the CI ``compiled`` job), the genuinely jitted
  kernels are compared against the numpy reference directly.

An AST lint also pins the packaging contract: nothing under ``repro``
outside ``repro._compiled`` may import numba, so ``import repro`` never
requires the numba toolchain.
"""

import ast
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro._compiled as _compiled
from repro._compiled import kernels as kernel_sources
from repro.generators import generate_rmat
from repro.graph import Graph
from repro.graph.property_engine import triangle_counts_engine
from repro.partitioning import (
    HDRFPartitioner,
    HybridEdgePartitioner,
    TwoPhaseStreamingPartitioner,
)

#: Both sides of the int64 replica-bitmask cutoff plus a dense large k: the
#: k > 63 rows are exactly the cliff the compiled tier exists to remove.
COMPILED_K_GRID = (2, 63, 64, 100)


@pytest.fixture
def forced_compiled(monkeypatch):
    """Route ``use_compiled=True`` through the kernel sources without numba.

    ``compiled_enabled`` refuses to engage unless numba actually jitted the
    kernels (interpreting the loops would be slower than numpy, never
    faster).  Patching ``numba_available`` to ``True`` makes every dispatch
    site take the compiled branch while the kernel module still runs as
    plain Python — the only way a numba-less environment can exercise the
    production dispatch path end to end.
    """
    monkeypatch.setattr(_compiled, "numba_available", lambda: True)


def _graph(edges, num_vertices=None):
    if edges:
        src, dst = (np.array(side, dtype=np.int64) for side in zip(*edges))
    else:
        src = dst = np.array([], dtype=np.int64)
    return Graph(src, dst, num_vertices=num_vertices)


class TestFlagResolution:
    """REPRO_COMPILED / use_compiled= resolution semantics."""

    @pytest.mark.parametrize("value", ["1", "true", "YES", " On "])
    def test_env_enabled_true_values(self, monkeypatch, value):
        monkeypatch.setenv(_compiled.ENV_FLAG, value)
        assert _compiled.env_enabled()

    @pytest.mark.parametrize("value", ["", "0", "no", "off", "2", "enabled"])
    def test_env_enabled_false_values(self, monkeypatch, value):
        monkeypatch.setenv(_compiled.ENV_FLAG, value)
        assert not _compiled.env_enabled()

    def test_env_enabled_unset(self, monkeypatch):
        monkeypatch.delenv(_compiled.ENV_FLAG, raising=False)
        assert not _compiled.env_enabled()

    def test_explicit_kwarg_beats_environment(self, monkeypatch):
        monkeypatch.setattr(_compiled, "numba_available", lambda: True)
        monkeypatch.setenv(_compiled.ENV_FLAG, "1")
        assert _compiled.compiled_enabled(None)
        assert not _compiled.compiled_enabled(False)
        monkeypatch.delenv(_compiled.ENV_FLAG)
        assert not _compiled.compiled_enabled(None)
        assert _compiled.compiled_enabled(True)

    def test_never_enabled_without_numba(self, monkeypatch):
        """A missing numba means fall back, never interpret the loops."""
        monkeypatch.setattr(_compiled, "numba_available", lambda: False)
        monkeypatch.setenv(_compiled.ENV_FLAG, "1")
        assert not _compiled.compiled_enabled(None)
        assert not _compiled.compiled_enabled(True)

    def test_kernel_sources_importable_without_numba(self):
        # Regardless of whether numba is installed, the kernel module must
        # import (the njit stand-in) so parity tests can run its sources.
        assert _compiled.load_kernels() is kernel_sources

    @pytest.mark.skipif(_compiled.numba_available(),
                        reason="needs a numba-less environment")
    def test_env_flag_is_silent_noop_without_numba(self, monkeypatch):
        """REPRO_COMPILED=1 on a numba-less install changes nothing."""
        monkeypatch.setenv(_compiled.ENV_FLAG, "1")
        graph = generate_rmat(96, 500, seed=7)
        flagged = HDRFPartitioner()(graph, 4).assignment
        monkeypatch.delenv(_compiled.ENV_FLAG)
        default = HDRFPartitioner()(graph, 4).assignment
        np.testing.assert_array_equal(flagged, default)
        explicit = HDRFPartitioner(use_compiled=True)(graph, 4).assignment
        np.testing.assert_array_equal(explicit, default)


class TestStreamingParity:
    """Partitioner assignments: compiled dispatch vs numpy reference."""

    @pytest.mark.parametrize("k", COMPILED_K_GRID)
    def test_hdrf_identical(self, forced_compiled, k):
        graph = generate_rmat(96, 500, seed=3)
        compiled = HDRFPartitioner(use_compiled=True)(graph, k).assignment
        reference = HDRFPartitioner(use_compiled=False)(graph, k).assignment
        np.testing.assert_array_equal(compiled, reference)

    @given(seed=st.integers(0, 60), k=st.sampled_from(COMPILED_K_GRID),
           balance_weight=st.sampled_from([1.0, 5.0]))
    @settings(max_examples=20, deadline=None)
    def test_hdrf_property_identical(self, seed, k, balance_weight):
        graph = generate_rmat(96, 500, seed=seed)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(_compiled, "numba_available", lambda: True)
            compiled = HDRFPartitioner(balance_weight=balance_weight,
                                       use_compiled=True)(graph, k).assignment
        reference = HDRFPartitioner(balance_weight=balance_weight,
                                    use_compiled=False)(graph, k).assignment
        np.testing.assert_array_equal(compiled, reference)

    @pytest.mark.parametrize("k", COMPILED_K_GRID)
    @pytest.mark.parametrize("balance_slack", [1.05, 1.0])
    def test_2ps_identical(self, forced_compiled, k, balance_slack):
        # balance_slack=1.0 forces the capacity-overflow (least-loaded) path.
        graph = generate_rmat(96, 700, seed=11)
        compiled = TwoPhaseStreamingPartitioner(
            balance_slack=balance_slack, use_compiled=True)(graph, k)
        reference = TwoPhaseStreamingPartitioner(
            balance_slack=balance_slack, use_compiled=False)(graph, k)
        np.testing.assert_array_equal(compiled.assignment,
                                      reference.assignment)

    @given(seed=st.integers(0, 60), k=st.sampled_from(COMPILED_K_GRID))
    @settings(max_examples=15, deadline=None)
    def test_2ps_property_identical(self, seed, k):
        graph = generate_rmat(80, 450, seed=seed)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(_compiled, "numba_available", lambda: True)
            compiled = TwoPhaseStreamingPartitioner(
                use_compiled=True)(graph, k)
        reference = TwoPhaseStreamingPartitioner(use_compiled=False)(graph, k)
        np.testing.assert_array_equal(compiled.assignment,
                                      reference.assignment)

    @pytest.mark.parametrize("k", COMPILED_K_GRID)
    @pytest.mark.parametrize("tau", [1.0, 10.0])
    def test_hep_identical(self, forced_compiled, k, tau):
        # Small tau streams most edges, maximising compiled-kernel coverage.
        graph = generate_rmat(96, 700, seed=5)
        compiled = HybridEdgePartitioner(tau=tau, use_compiled=True)(graph, k)
        reference = HybridEdgePartitioner(tau=tau,
                                          use_compiled=False)(graph, k)
        np.testing.assert_array_equal(compiled.assignment,
                                      reference.assignment)

    @given(seed=st.integers(0, 60), k=st.sampled_from(COMPILED_K_GRID))
    @settings(max_examples=15, deadline=None)
    def test_hep_property_identical(self, seed, k):
        graph = generate_rmat(80, 450, seed=seed)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(_compiled, "numba_available", lambda: True)
            compiled = HybridEdgePartitioner(
                tau=1.0, use_compiled=True)(graph, k)
        reference = HybridEdgePartitioner(tau=1.0,
                                          use_compiled=False)(graph, k)
        np.testing.assert_array_equal(compiled.assignment,
                                      reference.assignment)


class TestTriangleJoinParity:
    """Oriented merge join vs the numpy wedge-enumeration engine."""

    FAMILIES = {
        "empty": ([], 0),
        "no_edges": ([], 5),
        "single_edge": ([(0, 1)], None),
        "triangle": ([(0, 1), (1, 2), (2, 0)], None),
        "self_loops": ([(0, 0), (0, 1), (1, 2), (2, 0), (2, 2)], None),
        "duplicate_edges": ([(0, 1), (1, 0), (0, 1), (1, 2), (2, 0),
                             (2, 0)], None),
        "isolated_vertices": ([(2, 3), (3, 4), (4, 2)], 9),
        "star": ([(0, i) for i in range(1, 12)], None),
        "clique": ([(i, j) for i in range(8) for j in range(i + 1, 8)],
                   None),
        "two_triangles_shared_edge": ([(0, 1), (1, 2), (2, 0), (1, 3),
                                       (3, 2)], None),
    }

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_families_identical(self, forced_compiled, family):
        edges, num_vertices = self.FAMILIES[family]
        graph = _graph(edges, num_vertices)
        compiled = triangle_counts_engine(graph, use_compiled=True)
        reference = triangle_counts_engine(graph, use_compiled=False)
        np.testing.assert_array_equal(compiled, reference)

    @pytest.mark.parametrize("seed", range(5))
    def test_rmat_identical(self, forced_compiled, seed):
        graph = generate_rmat(128, 900, seed=seed)
        compiled = triangle_counts_engine(graph, use_compiled=True)
        reference = triangle_counts_engine(graph, use_compiled=False)
        np.testing.assert_array_equal(compiled, reference)

    @given(edges=st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)),
                          max_size=160))
    @settings(max_examples=40, deadline=None)
    def test_property_identical(self, edges):
        graph = _graph(edges, num_vertices=25)
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(_compiled, "numba_available", lambda: True)
            compiled = triangle_counts_engine(graph, use_compiled=True)
        reference = triangle_counts_engine(graph, use_compiled=False)
        np.testing.assert_array_equal(compiled, reference)

    def test_join_counts_every_corner_once(self, forced_compiled):
        # Triangle 0-1-2 plus pendant: each corner participates exactly once.
        graph = _graph([(0, 1), (1, 2), (2, 0), (2, 3)])
        counts = triangle_counts_engine(graph, use_compiled=True)
        np.testing.assert_array_equal(counts, [1, 1, 1, 0])


class TestNumbaImportLint:
    """`import repro` must never require (or pay for) the numba toolchain."""

    def test_no_numba_import_outside_compiled_package(self):
        package_root = (pathlib.Path(__file__).resolve().parent.parent
                        / "src" / "repro")
        offenders = []
        for path in sorted(package_root.rglob("*.py")):
            if "_compiled" in path.relative_to(package_root).parts:
                continue
            tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
            for node in ast.walk(tree):
                roots = []
                if isinstance(node, ast.Import):
                    roots = [alias.name.split(".")[0]
                             for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.level == 0:
                    roots = [(node.module or "").split(".")[0]]
                if "numba" in roots:
                    offenders.append(f"{path}:{node.lineno}")
        assert not offenders, (
            "numba may only be imported inside repro._compiled; found "
            + ", ".join(offenders))


@pytest.mark.skipif(not _compiled.numba_available(),
                    reason="numba not installed (the 'compiled' extra)")
class TestJittedParity:
    """With real numba (the CI compiled job): jitted results are identical."""

    def test_jitted_partitioners_identical(self):
        graph = generate_rmat(128, 900, seed=2)
        for k in COMPILED_K_GRID:
            for factory in (
                    lambda c: HDRFPartitioner(use_compiled=c),
                    lambda c: TwoPhaseStreamingPartitioner(use_compiled=c),
                    lambda c: HybridEdgePartitioner(tau=1.0, use_compiled=c)):
                compiled = factory(True)(graph, k).assignment
                reference = factory(False)(graph, k).assignment
                np.testing.assert_array_equal(compiled, reference)

    def test_jitted_triangle_join_identical(self):
        for seed in range(3):
            graph = generate_rmat(200, 2000, seed=seed)
            compiled = triangle_counts_engine(graph, use_compiled=True)
            reference = triangle_counts_engine(graph, use_compiled=False)
            np.testing.assert_array_equal(compiled, reference)
