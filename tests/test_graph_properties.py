"""Unit and property-based tests for graph property computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Graph,
    compute_properties,
    density,
    mean_degree,
    pearson_skewness,
    triangle_counts,
    local_clustering_coefficients,
)


def _triangle_graph() -> Graph:
    return Graph.from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3)


def _star_graph(leaves: int = 5) -> Graph:
    return Graph.from_edges([(0, i) for i in range(1, leaves + 1)])


class TestScalarProperties:
    def test_density_triangle(self):
        assert density(_triangle_graph()) == pytest.approx(3 / (3 * 2))

    def test_density_small_graph(self):
        assert density(Graph.empty(1)) == 0.0

    def test_mean_degree_triangle(self):
        assert mean_degree(_triangle_graph()) == pytest.approx(2.0)

    def test_mean_degree_star(self):
        graph = _star_graph(4)
        assert mean_degree(graph) == pytest.approx(2 * 4 / 5)


class TestSkewness:
    def test_constant_distribution_has_zero_skew(self):
        assert pearson_skewness(np.array([3, 3, 3, 3])) == 0.0

    def test_right_skewed_distribution_is_positive(self):
        values = np.array([1] * 50 + [40])
        assert pearson_skewness(values) > 0

    def test_empty_distribution(self):
        assert pearson_skewness(np.array([])) == 0.0

    def test_star_out_degree_skew_positive(self):
        graph = _star_graph(30)
        assert pearson_skewness(graph.out_degrees()) > 0


class TestTriangles:
    def test_triangle_graph_counts(self):
        counts = triangle_counts(_triangle_graph())
        np.testing.assert_array_equal(counts, [1, 1, 1])

    def test_star_has_no_triangles(self):
        counts = triangle_counts(_star_graph(5))
        assert counts.sum() == 0

    def test_direction_is_ignored(self):
        forward = Graph.from_edges([(0, 1), (1, 2), (2, 0)], num_vertices=3)
        mixed = Graph.from_edges([(0, 1), (2, 1), (2, 0)], num_vertices=3)
        np.testing.assert_array_equal(triangle_counts(forward),
                                      triangle_counts(mixed))

    def test_matches_networkx(self, small_rmat_graph):
        import networkx as nx

        simple = small_rmat_graph.deduplicated().without_self_loops()
        ours = triangle_counts(simple)
        undirected = nx.Graph(simple.to_networkx().to_undirected())
        theirs = nx.triangles(undirected)
        for vertex, expected in theirs.items():
            assert ours[vertex] == expected


class TestClusteringCoefficient:
    def test_triangle_graph_is_fully_clustered(self):
        coeffs = local_clustering_coefficients(_triangle_graph())
        np.testing.assert_allclose(coeffs, 1.0)

    def test_star_graph_has_zero_clustering(self):
        coeffs = local_clustering_coefficients(_star_graph(5))
        np.testing.assert_allclose(coeffs, 0.0)


class TestComputeProperties:
    def test_bundle_matches_individual_functions(self, tiny_graph):
        props = compute_properties(tiny_graph)
        assert props.num_edges == tiny_graph.num_edges
        assert props.num_vertices == tiny_graph.num_vertices
        assert props.mean_degree == pytest.approx(mean_degree(tiny_graph))
        assert props.density == pytest.approx(density(tiny_graph))

    def test_feature_set_nesting(self, tiny_graph):
        props = compute_properties(tiny_graph)
        simple = set(props.simple())
        basic = set(props.basic())
        advanced = set(props.advanced())
        assert simple < basic < advanced

    def test_empty_graph_properties(self):
        props = compute_properties(Graph.empty(0))
        assert props.num_edges == 0
        assert props.mean_degree == 0.0

    def test_sampled_estimate_close_to_exact(self, small_rmat_graph):
        exact = compute_properties(small_rmat_graph, exact_triangles=True)
        sampled = compute_properties(small_rmat_graph, exact_triangles=False,
                                     sample_size=200, seed=1)
        assert sampled.mean_local_clustering == pytest.approx(
            exact.mean_local_clustering, abs=0.15)


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                    min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_properties_are_finite_for_any_graph(self, edges):
        graph = Graph.from_edges(edges)
        props = compute_properties(graph)
        for value in props.as_dict().values():
            assert np.isfinite(value)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_clustering_coefficient_bounded(self, edges):
        graph = Graph.from_edges(edges)
        coeffs = local_clustering_coefficients(graph.deduplicated())
        assert (coeffs >= 0).all()
        assert (coeffs <= 1.0 + 1e-9).all()
