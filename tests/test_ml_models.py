"""Tests for the regression models of the from-scratch ML library."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    LinearRegression,
    MLPRegressor,
    PolynomialRegression,
    RandomForestRegressor,
    RidgeRegression,
    SupportVectorRegressor,
    clone,
    r2_score,
    rmse,
)


def _linear_data(num_samples=150, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((num_samples, 3))
    targets = 2.0 * features[:, 0] - 1.5 * features[:, 1] + 0.5 + \
        noise * rng.normal(size=num_samples)
    return features, targets


def _nonlinear_data(num_samples=300, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((num_samples, 4))
    targets = (np.sin(3 * features[:, 0]) + features[:, 1] ** 2
               + features[:, 2] * features[:, 3])
    return features, targets


ALL_MODELS = [
    LinearRegression(),
    RidgeRegression(alpha=0.1),
    PolynomialRegression(degree=2),
    KNeighborsRegressor(n_neighbors=3),
    SupportVectorRegressor(C=10.0, max_iter=100),
    DecisionTreeRegressor(max_depth=6),
    RandomForestRegressor(n_estimators=15, max_depth=8),
    GradientBoostingRegressor(n_estimators=40, max_depth=3),
    MLPRegressor(hidden_layer_sizes=(32,), max_iter=80),
]


class TestModelContract:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_fit_predict_shapes(self, model):
        features, targets = _linear_data()
        fitted = clone(model).fit(features, targets)
        predictions = fitted.predict(features)
        assert predictions.shape == (features.shape[0],)
        assert np.isfinite(predictions).all()

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_predict_before_fit_raises(self, model):
        with pytest.raises((RuntimeError, Exception)):
            clone(model).predict(np.ones((2, 3)))

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_clone_preserves_params(self, model):
        copy = clone(model)
        assert copy.get_params() == model.get_params()
        assert copy is not model

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_learns_linear_signal(self, model):
        features, targets = _linear_data()
        fitted = clone(model).fit(features, targets)
        predictions = fitted.predict(features)
        assert r2_score(targets, predictions) > 0.5


class TestLinearModels:
    def test_ols_recovers_coefficients(self):
        features, targets = _linear_data(noise=0.0)
        model = LinearRegression().fit(features, targets)
        np.testing.assert_allclose(model.coefficients_, [2.0, -1.5, 0.0],
                                   atol=1e-8)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-8)

    def test_ridge_shrinks_towards_zero(self):
        features, targets = _linear_data(noise=0.0)
        weak = RidgeRegression(alpha=1e-6).fit(features, targets)
        strong = RidgeRegression(alpha=1e3).fit(features, targets)
        assert np.abs(strong.coefficients_).sum() < np.abs(weak.coefficients_).sum()

    def test_polynomial_beats_linear_on_quadratic_target(self):
        rng = np.random.default_rng(3)
        features = rng.random((200, 2))
        targets = features[:, 0] ** 2 + features[:, 1] ** 2
        linear_error = rmse(targets, LinearRegression().fit(features, targets)
                            .predict(features))
        poly_error = rmse(targets, PolynomialRegression(degree=2)
                          .fit(features, targets).predict(features))
        assert poly_error < linear_error / 2

    def test_set_params_roundtrip(self):
        model = PolynomialRegression(degree=2)
        model.set_params(degree=3)
        assert model.get_params()["degree"] == 3
        with pytest.raises(ValueError):
            model.set_params(nonexistent=1)


class TestKNN:
    def test_single_neighbor_memorises_training_data(self):
        features, targets = _linear_data(num_samples=40)
        model = KNeighborsRegressor(n_neighbors=1).fit(features, targets)
        np.testing.assert_allclose(model.predict(features), targets)

    def test_distance_weighting(self):
        features = np.array([[0.0], [1.0], [10.0]])
        targets = np.array([0.0, 1.0, 10.0])
        model = KNeighborsRegressor(n_neighbors=3, weights="distance")
        model.fit(features, targets)
        prediction = model.predict(np.array([[0.1]]))[0]
        assert prediction < 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(weights="bad")
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=0).fit(np.ones((3, 1)), np.ones(3))


class TestTrees:
    def test_tree_fits_step_function_exactly(self):
        features = np.arange(20, dtype=float).reshape(-1, 1)
        targets = (features.ravel() >= 10).astype(float)
        model = DecisionTreeRegressor().fit(features, targets)
        np.testing.assert_allclose(model.predict(features), targets)
        assert model.depth() >= 1

    def test_max_depth_limits_tree(self):
        features, targets = _nonlinear_data(150)
        shallow = DecisionTreeRegressor(max_depth=1).fit(features, targets)
        assert shallow.depth() <= 1

    def test_min_samples_leaf_respected(self):
        features = np.arange(10, dtype=float).reshape(-1, 1)
        targets = features.ravel()
        model = DecisionTreeRegressor(min_samples_leaf=5).fit(features, targets)
        assert model.depth() <= 1

    def test_feature_importances_sum_to_one(self):
        features, targets = _nonlinear_data(200)
        model = DecisionTreeRegressor(max_depth=6).fit(features, targets)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_irrelevant_feature_gets_low_importance(self):
        rng = np.random.default_rng(0)
        signal = rng.random(300)
        noise = rng.random(300)
        features = np.column_stack([signal, noise])
        targets = 3.0 * signal
        model = DecisionTreeRegressor(max_depth=8).fit(features, targets)
        assert model.feature_importances_[0] > 0.9

    def test_constant_target_yields_single_leaf(self):
        features = np.random.default_rng(0).random((30, 3))
        model = DecisionTreeRegressor().fit(features, np.ones(30))
        assert model.depth() == 0


class TestEnsembles:
    def test_forest_importances_normalised(self):
        features, targets = _nonlinear_data(200)
        model = RandomForestRegressor(n_estimators=10, max_depth=6)
        model.fit(features, targets)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_forest_beats_single_tree_on_noisy_data(self):
        rng = np.random.default_rng(7)
        features = rng.random((300, 5))
        targets = features[:, 0] + 0.3 * rng.normal(size=300)
        holdout_features = rng.random((100, 5))
        holdout_targets = holdout_features[:, 0]
        tree_error = rmse(holdout_targets,
                          DecisionTreeRegressor(random_state=1)
                          .fit(features, targets).predict(holdout_features))
        forest_error = rmse(holdout_targets,
                            RandomForestRegressor(n_estimators=30, random_state=1)
                            .fit(features, targets).predict(holdout_features))
        assert forest_error < tree_error

    def test_boosting_reduces_training_error_with_more_rounds(self):
        features, targets = _nonlinear_data(200)
        few = GradientBoostingRegressor(n_estimators=5).fit(features, targets)
        many = GradientBoostingRegressor(n_estimators=100).fit(features, targets)
        assert (rmse(targets, many.predict(features))
                < rmse(targets, few.predict(features)))

    def test_boosting_rejects_invalid_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0).fit(np.ones((10, 2)),
                                                         np.ones(10))

    def test_ensembles_are_deterministic_given_seed(self):
        features, targets = _nonlinear_data(120)
        a = RandomForestRegressor(n_estimators=5, random_state=3).fit(features, targets)
        b = RandomForestRegressor(n_estimators=5, random_state=3).fit(features, targets)
        np.testing.assert_allclose(a.predict(features), b.predict(features))


class TestSVRAndMLP:
    def test_svr_linear_kernel_on_linear_data(self):
        features, targets = _linear_data(noise=0.01)
        model = SupportVectorRegressor(kernel="linear", C=10.0)
        model.fit(features, targets)
        assert r2_score(targets, model.predict(features)) > 0.9

    def test_svr_invalid_kernel(self):
        with pytest.raises(ValueError):
            SupportVectorRegressor(kernel="poly")

    def test_mlp_learns_nonlinear_signal(self):
        features, targets = _nonlinear_data(250)
        model = MLPRegressor(hidden_layer_sizes=(64, 32), max_iter=200,
                             random_state=1)
        model.fit(features, targets)
        assert r2_score(targets, model.predict(features)) > 0.8

    def test_mlp_deterministic_given_seed(self):
        features, targets = _linear_data()
        a = MLPRegressor(max_iter=30, random_state=5).fit(features, targets)
        b = MLPRegressor(max_iter=30, random_state=5).fit(features, targets)
        np.testing.assert_allclose(a.predict(features), b.predict(features))
