"""Tests for the serving subsystem: batched selection, model registry,
SelectionService micro-batching, and the HTTP frontend (live sockets)."""

import json
import os
import threading

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.graph import GraphProperties, compute_properties, save_npz
from repro.ease import (
    EASE,
    GraphProfiler,
    SelectionRequest,
    graph_feature_matrix,
    graph_feature_vector,
)
from repro.ease.persistence import load_dataset, save_dataset, save_ease
from repro.serving import (
    ModelRegistry,
    SelectionClient,
    SelectionHTTPServer,
    SelectionService,
    dataset_fingerprint,
)
from repro.serving.client import SelectionServiceError
from repro.cli import main

PARTITIONERS = ("2d", "dbh", "ne")


@pytest.fixture(scope="module")
def small_profile():
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(4)]
    return profiler.profile(graphs, graphs)


@pytest.fixture(scope="module")
def trained_system(small_profile):
    return EASE(partitioner_names=PARTITIONERS).train(small_profile)


@pytest.fixture(scope="module")
def query_graphs():
    return [generate_rmat(128, 800 + 120 * s, seed=20 + s) for s in range(4)]


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"))


# --------------------------------------------------------------------------- #
# Batched feature extraction and prediction
# --------------------------------------------------------------------------- #
class TestBatchedFeatures:
    def test_matrix_matches_per_row_vectors(self, query_graphs):
        properties = [compute_properties(g, exact_triangles=False)
                      for g in query_graphs]
        for feature_set in ("simple", "basic", "advanced"):
            matrix = graph_feature_matrix(properties, feature_set)
            expected = np.vstack([graph_feature_vector(p, feature_set)
                                  for p in properties])
            np.testing.assert_array_equal(matrix, expected)

    def test_matrix_broadcasts_shared_instances(self, query_graphs):
        props = compute_properties(query_graphs[0], exact_triangles=False)
        matrix = graph_feature_matrix([props] * 5, "basic")
        assert matrix.shape == (5, 6)
        np.testing.assert_array_equal(
            matrix, np.tile(graph_feature_vector(props, "basic"), (5, 1)))

    def test_empty_batch(self):
        assert graph_feature_matrix([], "basic").shape == (0, 6)

    def test_unknown_feature_set(self, query_graphs):
        props = compute_properties(query_graphs[0], exact_triangles=False)
        with pytest.raises(ValueError):
            graph_feature_matrix([props], "bogus")


class TestBatchedPredictors:
    def test_quality_predict_batch_matches_singles(self, trained_system,
                                                   query_graphs):
        predictor = trained_system.quality_predictor
        properties = [compute_properties(g, exact_triangles=False)
                      for g in query_graphs]
        partitioners = [PARTITIONERS[i % len(PARTITIONERS)]
                        for i in range(len(properties))]
        counts = [2 + i for i in range(len(properties))]
        batch = predictor.predict_batch(properties, partitioners, counts)
        for props, partitioner, k, batched in zip(properties, partitioners,
                                                  counts, batch):
            single = predictor.predict(props, partitioner, k)
            assert single.as_dict() == pytest.approx(batched.as_dict(),
                                                     rel=1e-12)

    def test_processing_batch_matches_singles(self, trained_system,
                                              query_graphs):
        predictor = trained_system.processing_time_predictor
        properties = [compute_properties(g, exact_triangles=False)
                      for g in query_graphs]
        metrics = [{"replication_factor": 1.5, "edge_balance": 1.1,
                    "vertex_balance": 1.2, "source_balance": 1.1,
                    "destination_balance": 1.3}] * len(properties)
        iterations = [None, 5, 20, None]
        batch = predictor.predict_total_seconds_batch(
            ["pagerank"] * len(properties), properties,
            [2] * len(properties), metrics, num_iterations=iterations)
        for row, props in enumerate(properties):
            single = predictor.predict_total_seconds(
                "pagerank", props, 2, metrics[row],
                num_iterations=iterations[row])
            assert batch[row] == pytest.approx(single, rel=1e-12)

    def test_selector_batch_matches_sequential(self, trained_system,
                                               query_graphs):
        selector = trained_system.selector
        requests = [SelectionRequest(
            graph=compute_properties(g, exact_triangles=False),
            algorithm="pagerank", num_partitions=2 + (i % 2),
            goal="end_to_end" if i % 2 == 0 else "processing")
            for i, g in enumerate(query_graphs)]
        batch_results = selector.select_batch(requests)
        for request, batched in zip(requests, batch_results):
            single = selector.select(request.graph, request.algorithm,
                                     request.num_partitions, goal=request.goal)
            assert batched.selected == single.selected
            for lhs, rhs in zip(batched.scores, single.scores):
                assert lhs.partitioner == rhs.partitioner
                assert lhs.predicted_end_to_end_seconds == pytest.approx(
                    rhs.predicted_end_to_end_seconds, rel=1e-9)

    def test_select_batch_empty(self, trained_system):
        assert trained_system.selector.select_batch([]) == []

    def test_select_batch_validates_goal(self, trained_system, query_graphs):
        props = compute_properties(query_graphs[0], exact_triangles=False)
        with pytest.raises(ValueError):
            trained_system.selector.select_batch([SelectionRequest(
                graph=props, algorithm="pagerank", num_partitions=2,
                goal="bogus")])


# --------------------------------------------------------------------------- #
# Model registry
# --------------------------------------------------------------------------- #
class TestModelRegistry:
    def test_publish_promote_load_roundtrip(self, registry, trained_system,
                                            small_profile, query_graphs):
        entry = registry.publish(trained_system, "ease",
                                 dataset=small_profile,
                                 metrics={"mape": 0.2})
        assert entry.manifest["partitioners"] == list(PARTITIONERS)
        assert entry.manifest["algorithms"] == ["pagerank"]
        assert entry.manifest["dataset"]["fingerprint"] == \
            dataset_fingerprint(small_profile)
        assert entry.manifest["metrics"] == {"mape": 0.2}

        registry.promote("ease", entry.version)
        assert registry.tags("ease") == {"production": entry.version}

        loaded = registry.load("ease", "production")
        props = compute_properties(query_graphs[0], exact_triangles=False)
        original = trained_system.select_partitioner(
            props, algorithm="pagerank", num_partitions=2)
        restored = loaded.select_partitioner(
            props, algorithm="pagerank", num_partitions=2)
        assert restored.selected == original.selected
        for lhs, rhs in zip(restored.scores, original.scores):
            # same bundle bytes loaded back -> bit-identical predictions
            assert lhs.predicted_partitioning_seconds == \
                rhs.predicted_partitioning_seconds
            assert lhs.predicted_processing_seconds == \
                rhs.predicted_processing_seconds
            assert lhs.predicted_quality == rhs.predicted_quality

    def test_publish_is_idempotent_by_content(self, registry, trained_system,
                                              tmp_path):
        bundle = str(tmp_path / "ease.pkl")
        save_ease(trained_system, bundle)
        first = registry.publish(bundle, "ease")
        second = registry.publish(bundle, "ease")
        assert first.version == second.version
        assert len(registry.versions("ease")) == 1

    def test_resolve_prefix_tag_and_latest(self, registry, trained_system):
        entry = registry.publish(trained_system, "ease")
        assert registry.resolve("ease").version == entry.version  # latest
        assert registry.resolve("ease", entry.version[:6]).version == \
            entry.version  # prefix
        registry.promote("ease", entry.version, tag="staging")
        assert registry.resolve("ease", "staging").version == entry.version

    def test_resolve_production_tag_wins_over_latest(self, registry,
                                                     trained_system,
                                                     small_profile):
        first = registry.publish(trained_system, "ease")
        retrained = EASE(partitioner_names=PARTITIONERS,
                         random_state=1).train(small_profile)
        second = registry.publish(retrained, "ease")
        assert second.version != first.version
        registry.promote("ease", first.version)
        assert registry.resolve("ease").version == first.version

    def test_same_second_publishes_resolve_to_newest(self, registry,
                                                     trained_system,
                                                     small_profile):
        first = registry.publish(trained_system, "ease")
        retrained = EASE(partitioner_names=PARTITIONERS,
                         random_state=1).train(small_profile)
        second = registry.publish(retrained, "ease")
        # created_at has 1s resolution; the ns counterpart must order these
        assert registry.resolve("ease").version == second.version
        assert [e.version for e in registry.versions("ease")] == \
            [first.version, second.version]

    def test_missing_manifest_is_repaired_on_republish(self, registry,
                                                       trained_system):
        entry = registry.publish(trained_system, "ease")
        os.remove(os.path.join(entry.path, "manifest.json"))
        repaired = registry.publish(trained_system, "ease")
        assert repaired.version == entry.version
        assert repaired.manifest["partitioners"] == list(PARTITIONERS)

    def test_errors(self, registry, trained_system):
        with pytest.raises(KeyError):
            registry.resolve("ease")  # nothing published
        registry.publish(trained_system, "ease")
        with pytest.raises(KeyError):
            registry.get("ease", "doesnotexist")
        with pytest.raises(KeyError):
            registry.resolve("ease", "doesnotexist")
        for bad_name in ("../escape", "a/b", ".", "..", ".hidden", ""):
            with pytest.raises(ValueError):
                registry.publish(trained_system, bad_name)

    def test_publish_rejects_non_ease_file(self, registry, tmp_path,
                                           small_profile):
        path = str(tmp_path / "profile.pkl")
        save_dataset(small_profile, path)
        with pytest.raises(ValueError):
            registry.publish(path, "ease")


# --------------------------------------------------------------------------- #
# SelectionService
# --------------------------------------------------------------------------- #
class TestSelectionService:
    def test_inline_service_matches_selector(self, trained_system,
                                             query_graphs):
        service = SelectionService(trained_system)
        graph = query_graphs[0]
        result = service.select(graph, "pagerank", 2)
        expected = trained_system.select_partitioner(graph, "pagerank", 2)
        assert result.selected == expected.selected

    def test_property_memoization(self, trained_system, query_graphs):
        service = SelectionService(trained_system)
        graph = query_graphs[0]
        first = service.select(graph, "pagerank", 2)
        second = service.select(graph, "pagerank", 2)
        assert service.stats.property_cache_misses == 1
        assert service.stats.property_cache_hits == 1
        assert first.selected == second.selected
        # same memoized properties object -> bit-identical scores
        for lhs, rhs in zip(first.scores, second.scores):
            assert lhs.predicted_quality == rhs.predicted_quality

    def test_property_cache_eviction(self, trained_system, query_graphs):
        service = SelectionService(trained_system, property_cache_size=2)
        for graph in query_graphs:
            service.resolve_properties(graph)
        assert len(service._properties) == 2

    def test_validation_fails_fast(self, trained_system, query_graphs):
        service = SelectionService(trained_system)
        with pytest.raises(ValueError):
            service.select(query_graphs[0], "not_an_algorithm", 2)
        with pytest.raises(ValueError):
            service.select(query_graphs[0], "pagerank", 0)
        with pytest.raises(ValueError):
            service.select(query_graphs[0], "pagerank", 2, goal="bogus")

    def test_concurrent_requests_are_batched_and_identical(
            self, trained_system, query_graphs):
        properties = [compute_properties(g, exact_triangles=False)
                      for g in query_graphs]
        jobs = [(properties[i % len(properties)], 2 + (i % 3))
                for i in range(16)]
        sequential = [trained_system.select_partitioner(props, "pagerank", k)
                      for props, k in jobs]

        service = SelectionService(trained_system, max_batch_size=8,
                                   batch_wait_seconds=0.2)
        results = [None] * len(jobs)
        barrier = threading.Barrier(len(jobs))

        def worker(index: int) -> None:
            props, k = jobs[index]
            barrier.wait()
            results[index] = service.select(props, "pagerank", k)

        with service:
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(jobs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert service.stats.requests == len(jobs)
        assert service.stats.max_batch_size <= 8
        assert service.stats.batches < len(jobs)  # coalescing happened
        for result, expected in zip(results, sequential):
            assert result.selected == expected.selected
            for lhs, rhs in zip(result.scores, expected.scores):
                assert lhs.predicted_end_to_end_seconds == pytest.approx(
                    rhs.predicted_end_to_end_seconds, rel=1e-9)

    def test_stop_answers_stragglers(self, trained_system, query_graphs):
        service = SelectionService(trained_system)
        service.start()
        service.stop()
        # inline path still works after stop
        result = service.select(query_graphs[0], "pagerank", 2)
        assert result.selected in PARTITIONERS

    def test_from_registry_and_health(self, registry, trained_system):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        service = SelectionService.from_registry(registry, "ease")
        health = service.health()
        assert health["status"] == "ok"
        assert health["model"]["version"] == entry.version
        assert health["algorithms"] == ["pagerank"]


# --------------------------------------------------------------------------- #
# HTTP frontend (live sockets)
# --------------------------------------------------------------------------- #
@pytest.fixture()
def live_server(registry, trained_system):
    entry = registry.publish(trained_system, "ease")
    registry.promote("ease", entry.version)
    service = SelectionService.from_registry(registry, "ease",
                                             batch_wait_seconds=0.001)
    server = SelectionHTTPServer(service, registry=registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    with server:
        thread.start()
        yield server
        server.shutdown()
    thread.join(timeout=5)


class TestHTTPServer:
    def test_healthz(self, live_server):
        client = SelectionClient(live_server.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["batching"] is True
        assert health["model"]["name"] == "ease"

    def test_models_endpoint(self, live_server):
        models = SelectionClient(live_server.url).models()
        assert models["loaded"]["name"] == "ease"
        assert len(models["models"]) == 1
        assert models["models"][0]["tags"] == ["production"]
        assert models["models"][0]["manifest"]["partitioners"] == \
            list(PARTITIONERS)

    def test_select_matches_in_process(self, live_server, trained_system,
                                       query_graphs):
        client = SelectionClient(live_server.url)
        for goal in ("end_to_end", "processing"):
            for graph in query_graphs[:2]:
                response = client.select(graph, "pagerank", 2, goal=goal)
                expected = trained_system.select_partitioner(
                    graph, "pagerank", 2, goal=goal)
                assert response["selected"] == expected.selected
                assert response["ranking"][0] == expected.selected
                by_name = {s["partitioner"]: s for s in response["scores"]}
                for score in expected.scores:
                    assert by_name[score.partitioner][
                        "predicted_end_to_end_seconds"] == pytest.approx(
                            score.predicted_end_to_end_seconds, rel=1e-9)

    def test_select_with_precomputed_properties(self, live_server,
                                                trained_system, query_graphs):
        client = SelectionClient(live_server.url)
        props = compute_properties(query_graphs[0], exact_triangles=False)
        response = client.select(props, "pagerank", 2)
        expected = trained_system.select_partitioner(props, "pagerank", 2)
        assert response["selected"] == expected.selected

    def test_predict_endpoint(self, live_server, trained_system,
                              query_graphs):
        client = SelectionClient(live_server.url)
        response = client.predict(query_graphs[0], "pagerank", 2)
        assert [p["partitioner"] for p in response["predictions"]] == \
            list(PARTITIONERS)
        for prediction in response["predictions"]:
            assert set(prediction["predicted_quality"]) == {
                "replication_factor", "edge_balance", "vertex_balance",
                "source_balance", "destination_balance"}

    @pytest.mark.parametrize("payload,fragment", [
        ({}, "exactly one of"),
        ({"graph": {"src": [0]}, "algorithm": "pagerank",
          "num_partitions": 2}, "'graph'"),
        ({"graph": {"src": [0], "dst": [1]},
          "num_partitions": 2}, "'algorithm'"),
        ({"graph": {"src": [0], "dst": [1]}, "algorithm": "pagerank",
          "num_partitions": 0}, "num_partitions"),
        ({"graph": {"src": [0], "dst": [1]}, "algorithm": "pagerank",
          "num_partitions": 2, "goal": "bogus"}, "goal"),
        ({"properties": {"num_edges": 1}, "algorithm": "pagerank",
          "num_partitions": 2}, "properties"),
        ({"graph": {"src": [0], "dst": [1]}, "algorithm": "sssp",
          "num_partitions": 2}, "no trained model"),
    ])
    def test_malformed_select_is_4xx(self, live_server, payload, fragment):
        client = SelectionClient(live_server.url)
        with pytest.raises(SelectionServiceError) as excinfo:
            client._request("/v1/select", payload)
        assert excinfo.value.status == 400
        assert fragment in excinfo.value.message

    def test_client_does_not_mutate_payload_fragments(self, live_server,
                                                      trained_system,
                                                      query_graphs):
        client = SelectionClient(live_server.url)
        props = compute_properties(query_graphs[0], exact_triangles=False)
        fragment = {"properties": props.as_dict()}
        client.select(fragment, "pagerank", 2, num_iterations=5)
        assert fragment == {"properties": props.as_dict()}

    def test_missing_content_length_is_400(self, live_server):
        import http.client

        host, port = live_server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/select",
                                  skip_accept_encoding=True)
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert b"Content-Length" in response.read()
        finally:
            connection.close()

    def test_invalid_json_is_400(self, live_server):
        import urllib.request

        request = urllib.request.Request(
            f"{live_server.url}/v1/select", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, live_server):
        client = SelectionClient(live_server.url)
        with pytest.raises(SelectionServiceError) as excinfo:
            client._request("/v1/nope")
        assert excinfo.value.status == 404

    def test_multithreaded_clients_match_sequential(self, live_server,
                                                    trained_system,
                                                    query_graphs):
        properties = [compute_properties(g, exact_triangles=False)
                      for g in query_graphs]
        jobs = [(properties[i % len(properties)], 2 + (i % 3))
                for i in range(12)]
        sequential = [trained_system.select_partitioner(p, "pagerank", k)
                      for p, k in jobs]
        responses = [None] * len(jobs)
        barrier = threading.Barrier(len(jobs))

        def worker(index: int) -> None:
            client = SelectionClient(live_server.url)
            props, k = jobs[index]
            barrier.wait()
            responses[index] = client.select(props, "pagerank", k)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(jobs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for response, expected in zip(responses, sequential):
            assert response["selected"] == expected.selected
        assert live_server.service.stats.requests >= len(jobs)


# --------------------------------------------------------------------------- #
# GraphProperties JSON roundtrip
# --------------------------------------------------------------------------- #
class TestGraphPropertiesDict:
    def test_roundtrip(self, query_graphs):
        props = compute_properties(query_graphs[0], exact_triangles=False)
        assert GraphProperties.from_dict(props.as_dict()) == props

    def test_rejects_unknown_and_missing_keys(self, query_graphs):
        props = compute_properties(query_graphs[0], exact_triangles=False)
        values = props.as_dict()
        with pytest.raises(ValueError):
            GraphProperties.from_dict({**values, "bogus": 1.0})
        values.pop("num_edges")
        with pytest.raises(ValueError):
            GraphProperties.from_dict(values)


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestServingCLI:
    def test_models_publish_list_promote(self, tmp_path, trained_system,
                                         small_profile, capsys):
        bundle = str(tmp_path / "ease.pkl")
        profile_path = str(tmp_path / "profile.pkl")
        registry_dir = str(tmp_path / "registry")
        save_ease(trained_system, bundle)
        save_dataset(small_profile, profile_path)

        assert main(["models", "publish", "--registry", registry_dir,
                     "--model", bundle, "--name", "ease",
                     "--profile", profile_path]) == 0
        version = ModelRegistry(registry_dir).versions("ease")[-1].version
        assert version in capsys.readouterr().out

        assert main(["models", "promote", "--registry", registry_dir,
                     "--name", "ease", "--version", version[:6]]) == 0
        assert ModelRegistry(registry_dir).tags("ease") == {
            "production": version}

        assert main(["models", "list", "--registry", registry_dir]) == 0
        output = capsys.readouterr().out
        assert "production" in output and version in output

    def test_select_with_properties_json(self, tmp_path, trained_system,
                                         query_graphs, capsys):
        bundle = str(tmp_path / "ease.pkl")
        save_ease(trained_system, bundle)
        props = compute_properties(query_graphs[0], exact_triangles=False)
        props_path = str(tmp_path / "props.json")
        with open(props_path, "w", encoding="utf-8") as handle:
            json.dump(props.as_dict(), handle)

        assert main(["select", "--model", bundle,
                     "--properties", props_path,
                     "--algorithm", "pagerank", "--partitions", "2"]) == 0
        output = capsys.readouterr().out
        expected = trained_system.select_partitioner(props, "pagerank", 2)
        assert f"selected partitioner: {expected.selected}" in output

    def test_select_requires_exactly_one_input(self, tmp_path,
                                               trained_system):
        bundle = str(tmp_path / "ease.pkl")
        save_ease(trained_system, bundle)
        with pytest.raises(SystemExit):
            main(["select", "--model", bundle, "--algorithm", "pagerank"])

    def test_profile_extend_profiles_only_new_graphs(self, tmp_path, capsys):
        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        for seed in range(2):
            save_npz(generate_rmat(96, 600 + 100 * seed, seed=seed),
                     str(graphs_dir / f"g{seed}.npz"))
        dataset_path = str(tmp_path / "profile.pkl")
        base_args = ["--graphs", str(graphs_dir), "--output", dataset_path,
                     "--partitioners", "2d", "dbh",
                     "--algorithms", "pagerank",
                     "--partition-counts", "2",
                     "--processing-partitions", "2"]
        assert main(["profile"] + base_args) == 0
        first = load_dataset(dataset_path)
        assert len(first.graph_names()) == 2

        save_npz(generate_rmat(96, 900, seed=7), str(graphs_dir / "g7.npz"))
        capsys.readouterr()
        assert main(["profile"] + base_args
                    + ["--extend", dataset_path]) == 0
        output = capsys.readouterr().out
        assert "2 graphs already profiled, 1 new" in output
        extended = load_dataset(dataset_path)
        assert len(extended.graph_names()) == 3
        # old records are preserved (merged, canonically sorted)
        assert len(extended.quality) == len(first.quality) * 3 // 2

        # extending again with no new graphs is a no-op profile
        assert main(["profile"] + base_args
                    + ["--extend", dataset_path]) == 0
        assert "0 new" in capsys.readouterr().out
        assert load_dataset(dataset_path).summary() == extended.summary()

    def test_extend_missing_dataset_fails(self, tmp_path):
        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        save_npz(generate_rmat(96, 600, seed=0), str(graphs_dir / "g0.npz"))
        with pytest.raises(SystemExit):
            main(["profile", "--graphs", str(graphs_dir),
                  "--output", str(tmp_path / "p.pkl"),
                  "--extend", str(tmp_path / "missing.pkl")])


# --------------------------------------------------------------------------- #
# Selection result cache
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_repeated_request_hits_cache(self, trained_system, query_graphs):
        service = SelectionService(trained_system)
        graph = query_graphs[0]
        first = service.select(graph, "pagerank", 2)
        second = service.select(graph, "pagerank", 2)
        assert service.stats.result_cache_misses == 1
        assert service.stats.result_cache_hits == 1
        assert second is first  # memoized outcome, no predictor call
        # different k misses
        service.select(graph, "pagerank", 3)
        assert service.stats.result_cache_misses == 2

    def test_cache_keyed_by_property_values(self, trained_system,
                                            query_graphs):
        """A precomputed-properties request shares the cache entry of the
        equivalent graph request."""
        service = SelectionService(trained_system)
        graph = query_graphs[0]
        from_graph = service.select(graph, "pagerank", 2)
        properties = compute_properties(graph, exact_triangles=False)
        from_properties = service.select(properties, "pagerank", 2)
        assert from_properties is from_graph
        assert service.stats.result_cache_hits == 1

    def test_bounded_lru_eviction(self, trained_system, query_graphs):
        service = SelectionService(trained_system, result_cache_size=2)
        for graph in query_graphs[:3]:
            service.select(graph, "pagerank", 2)
        assert len(service._results) == 2
        # oldest entry was evicted -> re-selecting it misses again
        service.select(query_graphs[0], "pagerank", 2)
        assert service.stats.result_cache_misses == 4

    def test_zero_size_disables_cache(self, trained_system, query_graphs):
        service = SelectionService(trained_system, result_cache_size=0)
        first = service.select(query_graphs[0], "pagerank", 2)
        second = service.select(query_graphs[0], "pagerank", 2)
        assert first is not second
        assert service.stats.result_cache_hits == 0
        assert service.stats.result_cache_misses == 0
        with pytest.raises(ValueError):
            SelectionService(trained_system, result_cache_size=-1)

    def test_invalidate_and_reload(self, trained_system, query_graphs):
        service = SelectionService(trained_system)
        service.select(query_graphs[0], "pagerank", 2)
        assert service.invalidate_result_cache() == 1
        assert len(service._results) == 0
        service.select(query_graphs[0], "pagerank", 2)
        service.reload(trained_system, model_info={"name": "swapped"})
        assert len(service._results) == 0
        assert service.model_info == {"name": "swapped"}
        # properties stay cached across reloads (model-independent)
        assert len(service._properties) == 1

    def test_reload_from_registry_on_promote(self, registry, trained_system,
                                             small_profile, query_graphs):
        first = registry.publish(trained_system, "ease")
        registry.promote("ease", first.version, tag="production")
        service = SelectionService.from_registry(registry, "ease",
                                                 "production")
        baseline = service.select(query_graphs[0], "pagerank", 2)
        assert service.reload_from_registry() is False
        assert len(service._results) == 1

        # publish a differently-trained system and promote it
        retrained = EASE(partitioner_names=PARTITIONERS,
                         feature_set="simple").train(small_profile)
        second = registry.publish(retrained, "ease")
        registry.promote("ease", second.version, tag="production")
        assert service.reload_from_registry() is True
        assert service.model_info["version"] == second.version
        assert len(service._results) == 0
        result = service.select(query_graphs[0], "pagerank", 2)
        assert result is not baseline

    def test_reload_from_registry_requires_registry(self, trained_system):
        service = SelectionService(trained_system)
        with pytest.raises(RuntimeError):
            service.reload_from_registry()

    def test_healthz_surfaces_result_cache_counters(self, trained_system,
                                                    query_graphs):
        service = SelectionService(trained_system)
        service.select(query_graphs[0], "pagerank", 2)
        service.select(query_graphs[0], "pagerank", 2)
        stats = service.health()["stats"]
        assert stats["result_cache_hits"] == 1
        assert stats["result_cache_misses"] == 1


class TestBatchSubmission:
    def test_select_many_matches_singles(self, trained_system, query_graphs):
        reference = SelectionService(trained_system)
        expected = [reference.select(g, "pagerank", 2) for g in query_graphs]
        service = SelectionService(trained_system)
        results = service.select_many([
            SelectionRequest(graph=g, algorithm="pagerank", num_partitions=2)
            for g in query_graphs])
        for got, want in zip(results, expected):
            assert got.selected == want.selected
            for lhs, rhs in zip(got.scores, want.scores):
                assert lhs.predicted_quality == rhs.predicted_quality

    def test_cold_batch_is_one_property_engine_pass(self, trained_system,
                                                    query_graphs,
                                                    monkeypatch):
        import repro.serving.service as service_module

        calls = []
        real = service_module.compute_properties_batch

        def counting(graphs, **kwargs):
            calls.append(len(graphs))
            return real(graphs, **kwargs)

        monkeypatch.setattr(service_module, "compute_properties_batch",
                            counting)
        service = SelectionService(trained_system)
        service.select_many([
            SelectionRequest(graph=g, algorithm="pagerank", num_partitions=2)
            for g in query_graphs])
        assert calls == [len(query_graphs)]
        assert service.stats.property_cache_misses == len(query_graphs)

    def test_batch_with_cache_hits_and_misses(self, trained_system,
                                              query_graphs):
        service = SelectionService(trained_system)
        warm = service.select(query_graphs[0], "pagerank", 2)
        results = service.select_many([
            SelectionRequest(graph=g, algorithm="pagerank", num_partitions=2)
            for g in query_graphs[:2]])
        assert results[0] is warm
        assert service.stats.result_cache_hits == 1
        assert service.stats.result_cache_misses == 2

    def test_batch_validation_fails_before_enqueue(self, trained_system,
                                                   query_graphs):
        service = SelectionService(trained_system)
        with pytest.raises(ValueError):
            service.submit_many([
                SelectionRequest(graph=query_graphs[0], algorithm="pagerank",
                                 num_partitions=2),
                SelectionRequest(graph=query_graphs[1], algorithm="bogus",
                                 num_partitions=2)])
        assert service.stats.requests == 0

    def test_batched_worker_path_uses_result_cache(self, trained_system,
                                                   query_graphs):
        with SelectionService(trained_system) as service:
            first = service.select(query_graphs[0], "pagerank", 2)
            second = service.select(query_graphs[0], "pagerank", 2)
            assert second is first
            assert service.stats.result_cache_hits == 1

    def test_inflight_batch_does_not_cache_across_reload(self, trained_system,
                                                         query_graphs):
        """A batch submitted before reload() must answer but never write an
        old-model result into the (freshly invalidated) cache."""
        from repro.serving.service import _Pending

        service = SelectionService(trained_system)
        properties = service.resolve_properties(query_graphs[0])
        request = SelectionRequest(graph=properties, algorithm="pagerank",
                                   num_partitions=2)
        pending = _Pending(request, cache_key=service._result_key(request),
                           generation=service._model_generation)
        service.reload(trained_system, model_info={"name": "swapped"})
        service._execute([pending])
        assert pending.future.result().selected
        assert len(service._results) == 0
        # a fresh request under the new generation caches normally again
        service.select(properties, "pagerank", 2)
        assert len(service._results) == 1
