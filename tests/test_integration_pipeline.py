"""Integration tests: the full EASE workflow from graph generation to
automatic partitioner selection (Figure 3 / Figure 5 of the paper)."""

import numpy as np
import pytest

from repro.generators import (
    generate_realworld_graph,
    generate_training_corpus,
    rmat_small_grid,
)
from repro.partitioning import compute_quality_metrics, create_partitioner
from repro.processing import ProcessingEngine, create_algorithm
from repro.ease import (
    EASE,
    GraphProfiler,
    OptimizationGoal,
    SelectionStrategyEvaluator,
)


@pytest.fixture(scope="module")
def profiler():
    return GraphProfiler(
        partitioner_names=("2d", "crvc", "dbh", "hdrf", "ne", "hep10"),
        partition_counts=(4,),
        processing_partition_count=4,
        algorithms=("pagerank", "connected_components", "synthetic_high"))


@pytest.fixture(scope="module")
def trained_system(profiler):
    # A small but *diverse* training corpus: sizes and parameter combinations
    # spanning the evaluation graphs, mirroring the paper's methodology of
    # covering the expected property ranges with generated graphs.
    from repro.generators import TABLE2_PARAMETER_COMBINATIONS, generate_rmat

    graphs = []
    sizes = [(64, 500), (128, 1000), (256, 1800), (384, 2600), (512, 3400)]
    for index, (num_vertices, num_edges) in enumerate(sizes):
        for combo in (0, 4, 8):
            graphs.append(generate_rmat(
                num_vertices, num_edges,
                TABLE2_PARAMETER_COMBINATIONS[combo],
                seed=10 * index + combo, graph_type="rmat"))
    return EASE(partitioner_names=profiler.partitioner_names).train(
        profiler.profile(graphs, graphs))


@pytest.fixture(scope="module")
def evaluation_profile(profiler):
    graphs = [generate_realworld_graph("soc", 300, 2200, seed=41),
              generate_realworld_graph("web", 300, 2500, seed=42)]
    return profiler.profile_processing(graphs)


class TestEndToEndWorkflow:
    def test_train_from_graphs_classmethod(self, profiler):
        specs = rmat_small_grid(scale=1 / 400_000)[::60][:4]
        graphs = list(generate_training_corpus(specs, seed=5))
        system = EASE.train_from_graphs(graphs, graphs[:2], profiler=profiler)
        result = system.select_partitioner(graphs[0], "pagerank", 4)
        assert result.selected in profiler.partitioner_names

    def test_selection_is_deterministic(self, trained_system):
        graph = generate_realworld_graph("soc", 250, 1800, seed=77)
        first = trained_system.select_partitioner(graph, "pagerank", 4)
        second = trained_system.select_partitioner(graph, "pagerank", 4)
        assert first.selected == second.selected

    def test_selected_partitioner_is_usable_downstream(self, trained_system):
        """The selection must plug into the rest of the pipeline: partition the
        graph with the selected partitioner and execute the workload."""
        graph = generate_realworld_graph("web", 300, 2000, seed=88)
        selection = trained_system.select_partitioner(graph, "pagerank", 4)
        partition = create_partitioner(selection.selected)(graph, 4)
        result = ProcessingEngine().run(partition,
                                        create_algorithm("pagerank",
                                                         num_iterations=5))
        assert result.total_seconds > 0
        assert compute_quality_metrics(partition).replication_factor >= 1.0

    def test_selector_beats_worst_and_random_on_average(self, trained_system,
                                                        evaluation_profile):
        """The headline claim of the paper, at laptop scale: EASE's selection
        leads to a lower average end-to-end time than random or worst-case
        selection."""
        evaluator = SelectionStrategyEvaluator(trained_system.selector)
        comparisons = evaluator.compare(evaluation_profile,
                                        goals=(OptimizationGoal.END_TO_END,))
        total = {name: 0.0 for name in ("SPS", "SO", "SSRF", "SR", "SW")}
        for comparison in comparisons:
            for name in total:
                total[name] += comparison.strategy_seconds[name]
        assert total["SPS"] < total["SW"]
        assert total["SPS"] <= total["SR"] * 1.05
        assert total["SO"] <= total["SPS"]

    def test_communication_bound_selection_prefers_low_rf(self, trained_system,
                                                          evaluation_profile):
        """For the communication-heavy synthetic workload, the partitioner
        selected for the processing-time goal should have a predicted
        replication factor no worse than the candidate median."""
        graph = generate_realworld_graph("soc", 300, 2200, seed=90)
        selection = trained_system.select_partitioner(
            graph, "synthetic_high", 4, goal=OptimizationGoal.PROCESSING)
        predicted_rf = [score.predicted_quality["replication_factor"]
                        for score in selection.scores]
        selected_rf = selection.score_of(
            selection.selected).predicted_quality["replication_factor"]
        assert selected_rf <= np.median(predicted_rf) + 1e-9

    def test_quality_predictions_track_truth_ordering(self, trained_system):
        """Predicted replication factors should preserve the true ordering
        between a hashing partitioner and the in-memory partitioner."""
        graph = generate_realworld_graph("soc", 300, 2400, seed=91)
        true_rf = {}
        for name in ("crvc", "ne"):
            partition = create_partitioner(name)(graph, 4)
            true_rf[name] = compute_quality_metrics(partition).replication_factor
        predicted_crvc = trained_system.predict_quality(graph, "crvc", 4)
        predicted_ne = trained_system.predict_quality(graph, "ne", 4)
        assert true_rf["ne"] < true_rf["crvc"]
        assert (predicted_ne.replication_factor
                < predicted_crvc.replication_factor)
