"""Additional unit tests: dataset records, selector scores and the
optimization-goal objective."""

import numpy as np
import pytest

from repro.graph import compute_properties
from repro.generators import generate_rmat
from repro.ease import (
    OptimizationGoal,
    PartitionerScore,
    ProfileDataset,
    QualityRecord,
    SelectionResult,
)


def _quality_record(graph_type="rmat", partitioner="ne", k=4):
    graph = generate_rmat(64, 300, seed=1, graph_type=graph_type)
    return QualityRecord(
        graph_name=graph.name, graph_type=graph_type,
        properties=compute_properties(graph), partitioner=partitioner,
        num_partitions=k,
        metrics={"replication_factor": 2.0, "edge_balance": 1.1,
                 "vertex_balance": 1.2, "source_balance": 1.3,
                 "destination_balance": 1.4})


class TestPartitionerScore:
    def test_end_to_end_is_sum(self):
        score = PartitionerScore("ne", 2.0, 5.0, {"replication_factor": 1.5})
        assert score.predicted_end_to_end_seconds == pytest.approx(7.0)

    def test_objective_selects_the_right_component(self):
        score = PartitionerScore("ne", 2.0, 5.0, {})
        assert score.objective(OptimizationGoal.PROCESSING) == pytest.approx(5.0)
        assert score.objective(OptimizationGoal.END_TO_END) == pytest.approx(7.0)


class TestSelectionResult:
    def _result(self):
        scores = [PartitionerScore("a", 1.0, 5.0, {}),
                  PartitionerScore("b", 3.0, 1.0, {}),
                  PartitionerScore("c", 0.5, 4.0, {})]
        return SelectionResult(selected="b", goal=OptimizationGoal.END_TO_END,
                               algorithm="pagerank", num_partitions=4,
                               scores=scores)

    def test_ranking_orders_by_goal(self):
        result = self._result()
        assert [s.partitioner for s in result.ranking()] == ["b", "c", "a"]

    def test_processing_goal_changes_the_order(self):
        result = self._result()
        result.goal = OptimizationGoal.PROCESSING
        assert [s.partitioner for s in result.ranking()] == ["b", "c", "a"]

    def test_score_of_unknown_partitioner(self):
        with pytest.raises(KeyError):
            self._result().score_of("zzz")


class TestProfileDatasetBehaviour:
    def test_filter_combined(self):
        dataset = ProfileDataset(quality=[
            _quality_record("wiki", "ne"),
            _quality_record("wiki", "2d"),
            _quality_record("soc", "ne"),
        ])
        filtered = dataset.filter_quality(graph_types=["wiki"],
                                          partitioners=["ne"])
        assert len(filtered) == 1
        assert filtered[0].graph_type == "wiki"
        assert filtered[0].partitioner == "ne"

    def test_graph_names_deduplicated(self):
        record = _quality_record()
        dataset = ProfileDataset(quality=[record, record])
        assert len(dataset.graph_names()) == 1

    def test_summary_of_empty_dataset(self):
        summary = ProfileDataset().summary()
        assert summary["quality_records"] == 0
        assert summary["graphs"] == 0


class TestQualityPredictorTargetSubset:
    def test_partial_fit_only_trains_requested_metrics(self):
        from repro.ease import GraphProfiler, PartitioningQualityPredictor

        profiler = GraphProfiler(partitioner_names=("2d", "ne"),
                                 partition_counts=(2,))
        graphs = [generate_rmat(96, 500, seed=s, graph_type="rmat")
                  for s in range(3)]
        records = profiler.profile_quality(graphs).quality
        predictor = PartitioningQualityPredictor()
        predictor.fit(records, targets=["replication_factor"])
        scores = predictor.evaluate(records)
        assert set(scores) == {"replication_factor"}
        with pytest.raises(ValueError):
            predictor.predict_metric("vertex_balance",
                                     [records[0].properties], ["ne"], [2])

    def test_unknown_target_rejected(self):
        from repro.ease import PartitioningQualityPredictor

        with pytest.raises(ValueError):
            PartitioningQualityPredictor().fit([_quality_record()],
                                               targets=["modularity"])
