"""Tests for the eleven edge partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import generate_rmat
from repro.graph import Graph
from repro.partitioning import (
    ALL_PARTITIONER_NAMES,
    PartitionerCategory,
    compute_quality_metrics,
    create_all_partitioners,
    create_partitioner,
    replication_factor,
    edge_balance,
    hash64,
)


def _hdrf_full_scan_reference(graph: Graph, k: int,
                              balance_weight: float = 1.0) -> np.ndarray:
    """HDRF as originally implemented: max/min recomputed per edge."""
    partial_degree = np.zeros(graph.num_vertices, dtype=np.int64)
    replica_mask = np.zeros(graph.num_vertices, dtype=np.int64)
    partition_sizes = np.zeros(k, dtype=np.int64)
    assignment = np.empty(graph.num_edges, dtype=np.int64)
    partition_ids = np.arange(k)
    for edge_id in range(graph.num_edges):
        u = int(graph.src[edge_id])
        v = int(graph.dst[edge_id])
        partial_degree[u] += 1
        partial_degree[v] += 1
        total = partial_degree[u] + partial_degree[v]
        theta_u = partial_degree[u] / total
        theta_v = partial_degree[v] / total
        in_p_u = (replica_mask[u] >> partition_ids) & 1
        in_p_v = (replica_mask[v] >> partition_ids) & 1
        replication_score = (in_p_u * (1.0 + (1.0 - theta_u))
                             + in_p_v * (1.0 + (1.0 - theta_v)))
        max_size = partition_sizes.max()
        min_size = partition_sizes.min()
        balance_score = (balance_weight * (max_size - partition_sizes)
                         / (1.0 + max_size - min_size))
        best = int(np.argmax(replication_score + balance_score))
        assignment[edge_id] = best
        partition_sizes[best] += 1
        replica_mask[u] |= np.int64(1) << np.int64(best)
        replica_mask[v] |= np.int64(1) << np.int64(best)
    return assignment


class TestRegistry:
    def test_eleven_partitioners(self):
        assert len(ALL_PARTITIONER_NAMES) == 11

    def test_create_all(self):
        partitioners = create_all_partitioners()
        assert {p.name for p in partitioners} == set(ALL_PARTITIONER_NAMES)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            create_partitioner("metis")

    def test_categories(self):
        categories = {name: create_partitioner(name).category
                      for name in ALL_PARTITIONER_NAMES}
        assert categories["1dd"] == PartitionerCategory.STATELESS_STREAMING
        assert categories["dbh"] == PartitionerCategory.STATELESS_STREAMING
        assert categories["hdrf"] == PartitionerCategory.STATEFUL_STREAMING
        assert categories["2ps"] == PartitionerCategory.STATEFUL_STREAMING
        assert categories["ne"] == PartitionerCategory.IN_MEMORY
        assert categories["hep10"] == PartitionerCategory.HYBRID


class TestPartitionValidity:
    """Every partitioner must produce a complete, in-range assignment."""

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    @pytest.mark.parametrize("k", [2, 4, 7])
    def test_assignment_is_valid(self, small_rmat_graph, name, k):
        partition = create_partitioner(name, seed=1)(small_rmat_graph, k)
        assert partition.assignment.shape[0] == small_rmat_graph.num_edges
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < k

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_single_partition(self, tiny_graph, name):
        partition = create_partitioner(name)(tiny_graph, 1)
        assert (partition.assignment == 0).all()
        assert replication_factor(partition) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_deterministic_for_fixed_seed(self, small_rmat_graph, name):
        first = create_partitioner(name, seed=3)(small_rmat_graph, 4)
        second = create_partitioner(name, seed=3)(small_rmat_graph, 4)
        np.testing.assert_array_equal(first.assignment, second.assignment)

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_rejects_zero_partitions(self, tiny_graph, name):
        with pytest.raises(ValueError):
            create_partitioner(name)(tiny_graph, 0)

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_empty_graph(self, name):
        graph = Graph.empty(num_vertices=4)
        partition = create_partitioner(name)(graph, 2)
        assert partition.assignment.shape[0] == 0


class TestHashPartitioners:
    def test_1dd_colocates_same_destination(self, small_rmat_graph):
        partition = create_partitioner("1dd")(small_rmat_graph, 8)
        dst = small_rmat_graph.dst
        for vertex in np.unique(dst)[:50]:
            parts = np.unique(partition.assignment[dst == vertex])
            assert parts.size == 1

    def test_1ds_colocates_same_source(self, small_rmat_graph):
        partition = create_partitioner("1ds")(small_rmat_graph, 8)
        src = small_rmat_graph.src
        for vertex in np.unique(src)[:50]:
            parts = np.unique(partition.assignment[src == vertex])
            assert parts.size == 1

    def test_crvc_is_direction_invariant(self):
        forward = Graph.from_edges([(1, 2)] * 5 + [(3, 4)] * 5)
        backward = Graph.from_edges([(2, 1)] * 5 + [(4, 3)] * 5)
        p_forward = create_partitioner("crvc")(forward, 4)
        p_backward = create_partitioner("crvc")(backward, 4)
        np.testing.assert_array_equal(p_forward.assignment,
                                      p_backward.assignment)

    def test_2d_replication_bound(self, small_rmat_graph):
        # 2D hashing bounds the replication factor by 2 * sqrt(k).
        k = 16
        partition = create_partitioner("2d")(small_rmat_graph, k)
        assert replication_factor(partition) <= 2 * np.sqrt(k) + 1e-9

    def test_hash64_is_deterministic_and_seed_sensitive(self):
        values = np.arange(100)
        np.testing.assert_array_equal(hash64(values, 1), hash64(values, 1))
        assert not np.array_equal(hash64(values, 1), hash64(values, 2))


class TestDegreeAwarePartitioners:
    def test_dbh_beats_random_hashing_on_skewed_graph(self):
        graph = generate_rmat(512, 6000, seed=7)
        rf_dbh = replication_factor(create_partitioner("dbh")(graph, 16))
        rf_crvc = replication_factor(create_partitioner("crvc")(graph, 16))
        assert rf_dbh < rf_crvc

    def test_hdrf_produces_good_edge_balance(self, small_rmat_graph):
        partition = create_partitioner("hdrf")(small_rmat_graph, 8)
        assert edge_balance(partition) < 1.2

    def test_hdrf_beats_stateless_hashing(self):
        graph = generate_rmat(512, 6000, seed=9)
        rf_hdrf = replication_factor(create_partitioner("hdrf")(graph, 16))
        rf_1dd = replication_factor(create_partitioner("1dd")(graph, 16))
        assert rf_hdrf < rf_1dd

    @pytest.mark.parametrize("seed,k", [(0, 2), (1, 4), (2, 8), (3, 16)])
    def test_hdrf_matches_full_scan_reference(self, seed, k):
        # Regression for the incremental max/min size tracking: assignments
        # must be identical to the original per-edge full-scan formulation.
        graph = generate_rmat(192, 1500, seed=seed)
        fast = create_partitioner("hdrf")(graph, k).assignment
        assert np.array_equal(fast, _hdrf_full_scan_reference(graph, k))

    def test_2ps_respects_balance_slack(self, small_rmat_graph):
        from repro.partitioning import TwoPhaseStreamingPartitioner

        partitioner = TwoPhaseStreamingPartitioner(balance_slack=1.10)
        partition = partitioner(small_rmat_graph, 4)
        assert edge_balance(partition) <= 1.10 + 0.05


class TestInMemoryAndHybrid:
    def test_ne_has_lowest_replication_factor(self):
        graph = generate_rmat(512, 6000, seed=11)
        rf = {name: replication_factor(create_partitioner(name)(graph, 8))
              for name in ("ne", "crvc", "2d", "1dd")}
        assert rf["ne"] < min(rf["crvc"], rf["2d"], rf["1dd"])

    def test_ne_covers_all_edges(self, small_rmat_graph):
        partition = create_partitioner("ne")(small_rmat_graph, 6)
        assert (partition.assignment >= 0).all()

    def test_hep_quality_improves_with_tau(self):
        graph = generate_rmat(512, 6000, seed=13)
        rf1 = replication_factor(create_partitioner("hep1")(graph, 8))
        rf100 = replication_factor(create_partitioner("hep100")(graph, 8))
        assert rf100 <= rf1 + 0.15

    def test_hep100_close_to_ne(self):
        graph = generate_rmat(512, 6000, seed=15)
        rf_hep = replication_factor(create_partitioner("hep100")(graph, 8))
        rf_ne = replication_factor(create_partitioner("ne")(graph, 8))
        assert abs(rf_hep - rf_ne) < 0.6

    def test_hep_rejects_non_positive_tau(self):
        from repro.partitioning import HybridEdgePartitioner

        with pytest.raises(ValueError):
            HybridEdgePartitioner(tau=0)

    def test_ne_vertex_balance_varies_with_seed(self):
        # The paper observes NE's vertex balance fluctuates between runs due
        # to random seed-vertex selection, while the RF stays stable.
        graph = generate_rmat(512, 6000, seed=17)
        rf_values = []
        for seed in range(3):
            partition = create_partitioner("ne", seed=seed)(graph, 8)
            rf_values.append(replication_factor(partition))
        assert max(rf_values) - min(rf_values) < 0.5


class TestPropertyBasedPartitioners:
    @given(seed=st.integers(0, 50), k=st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_streaming_partitioners_always_valid(self, seed, k):
        graph = generate_rmat(128, 600, seed=seed)
        for name in ("dbh", "hdrf", "2ps"):
            partition = create_partitioner(name)(graph, k)
            metrics = compute_quality_metrics(partition)
            assert 1.0 <= metrics.replication_factor <= k + 1e-9

    @given(seed=st.integers(0, 50), k=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_in_memory_partitioners_always_valid(self, seed, k):
        graph = generate_rmat(128, 600, seed=seed)
        for name in ("ne", "hep10"):
            partition = create_partitioner(name)(graph, k)
            assert (partition.assignment >= 0).all()
            assert partition.assignment.max() < k
