"""Unit tests for the graph data structure."""

import numpy as np
import pytest

from repro.graph import Graph


class TestGraphConstruction:
    def test_from_edges(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 6

    def test_infers_num_vertices(self):
        graph = Graph.from_edges([(0, 4)])
        assert graph.num_vertices == 5

    def test_explicit_num_vertices_must_cover_ids(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(0, 10)], num_vertices=5)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            Graph(np.array([-1]), np.array([0]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 1]), np.array([0]))

    def test_rejects_two_dimensional_input(self):
        with pytest.raises(ValueError):
            Graph(np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2), dtype=np.int64))

    def test_empty_graph(self):
        graph = Graph.empty(num_vertices=3)
        assert graph.num_edges == 0
        assert graph.num_vertices == 3
        assert list(graph.edges()) == []

    def test_len_is_edge_count(self, tiny_graph):
        assert len(tiny_graph) == tiny_graph.num_edges

    def test_edge_array_shape(self, tiny_graph):
        arr = tiny_graph.edge_array()
        assert arr.shape == (6, 2)
        assert (arr[:, 0] == tiny_graph.src).all()


class TestDegrees:
    def test_out_degrees(self, tiny_graph):
        out = tiny_graph.out_degrees()
        assert out[0] == 2  # 0->1, 0->5
        assert out[4] == 0

    def test_in_degrees(self, tiny_graph):
        incoming = tiny_graph.in_degrees()
        assert incoming[5] == 1
        assert incoming[0] == 1

    def test_total_degree_sums_to_twice_edges(self, small_rmat_graph):
        assert small_rmat_graph.degrees().sum() == 2 * small_rmat_graph.num_edges


class TestAdjacency:
    def test_out_adjacency_neighbors(self, tiny_graph):
        adj = tiny_graph.out_adjacency()
        assert set(adj.neighbors(0).tolist()) == {1, 5}
        assert adj.degree(0) == 2

    def test_in_adjacency_neighbors(self, tiny_graph):
        adj = tiny_graph.in_adjacency()
        assert set(adj.neighbors(2).tolist()) == {1}

    def test_undirected_adjacency_degree(self, tiny_graph):
        adj = tiny_graph.undirected_adjacency()
        # Vertex 2 has edges 1->2, 2->0, 2->3.
        assert adj.degree(2) == 3

    def test_undirected_edge_ids_map_back(self, tiny_graph):
        adj = tiny_graph.undirected_adjacency()
        start, end = adj.indptr[0], adj.indptr[1]
        edge_ids = adj.edge_ids[start:end]
        for edge_id in edge_ids:
            endpoints = {int(tiny_graph.src[edge_id]), int(tiny_graph.dst[edge_id])}
            assert 0 in endpoints

    def test_adjacency_matches_degree_counts(self, small_rmat_graph):
        adj = small_rmat_graph.out_adjacency()
        np.testing.assert_array_equal(adj.degrees(),
                                      small_rmat_graph.out_degrees())


class TestTransformations:
    def test_deduplicated_removes_duplicates(self):
        graph = Graph.from_edges([(0, 1), (0, 1), (1, 2)])
        assert graph.deduplicated().num_edges == 2

    def test_without_self_loops(self):
        graph = Graph.from_edges([(0, 0), (0, 1)])
        assert graph.without_self_loops().num_edges == 1

    def test_reversed_swaps_directions(self, tiny_graph):
        rev = tiny_graph.reversed()
        np.testing.assert_array_equal(rev.src, tiny_graph.dst)
        np.testing.assert_array_equal(rev.dst, tiny_graph.src)

    def test_subgraph_of_edges(self, tiny_graph):
        sub = tiny_graph.subgraph_of_edges(np.array([0, 1]))
        assert sub.num_edges == 2
        assert sub.num_vertices == tiny_graph.num_vertices

    def test_to_networkx_roundtrip(self, tiny_graph):
        nxg = tiny_graph.to_networkx()
        assert nxg.number_of_nodes() == tiny_graph.num_vertices
        assert nxg.number_of_edges() == tiny_graph.num_edges
