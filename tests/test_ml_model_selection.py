"""Tests for K-fold cross-validation, train/test split and grid search."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GridSearchCV,
    KFold,
    KNeighborsRegressor,
    LinearRegression,
    cross_val_score,
    train_test_split,
    mape,
    rmse,
)


class TestKFold:
    def test_folds_partition_all_samples(self):
        splits = list(KFold(n_splits=5).split(23))
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(23))

    def test_train_and_test_are_disjoint(self):
        for train, test in KFold(n_splits=4).split(20):
            assert set(train).isdisjoint(set(test))
            assert len(train) + len(test) == 20

    def test_deterministic_given_seed(self):
        a = [test.tolist() for _, test in KFold(random_state=1).split(30)]
        b = [test.tolist() for _, test in KFold(random_state=1).split(30)]
        assert a == b

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_rejects_single_split(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(100, test_fraction=0.2, random_state=0)
        assert len(train) == 80
        assert len(test) == 20
        assert set(train).isdisjoint(test)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.5)


class TestCrossValScore:
    def test_returns_one_score_per_fold(self):
        rng = np.random.default_rng(0)
        features = rng.random((60, 2))
        targets = features[:, 0] * 2 + 1
        scores = cross_val_score(LinearRegression(), features, targets,
                                 n_splits=4, scoring=rmse)
        assert scores.shape == (4,)
        assert (scores < 1e-6).all()

    def test_does_not_mutate_template_estimator(self):
        rng = np.random.default_rng(0)
        features = rng.random((40, 2))
        targets = features[:, 0]
        template = LinearRegression()
        cross_val_score(template, features, targets, n_splits=4)
        assert template.coefficients_ is None


class TestGridSearch:
    def test_selects_better_hyperparameters(self):
        rng = np.random.default_rng(2)
        features = rng.random((120, 1))
        targets = np.sin(6 * features[:, 0])
        search = GridSearchCV(KNeighborsRegressor(),
                              {"n_neighbors": [1, 50]}, n_splits=4,
                              scoring=rmse)
        search.fit(features, targets)
        assert search.best_params_["n_neighbors"] == 1

    def test_best_estimator_is_refit_on_full_data(self):
        rng = np.random.default_rng(3)
        features = rng.random((50, 2))
        targets = features.sum(axis=1)
        search = GridSearchCV(DecisionTreeRegressor(), {"max_depth": [2, 4]},
                              n_splits=3)
        search.fit(features, targets)
        predictions = search.predict(features)
        assert predictions.shape == (50,)

    def test_all_configurations_are_evaluated(self):
        rng = np.random.default_rng(4)
        features = rng.random((40, 2))
        targets = features[:, 0]
        search = GridSearchCV(DecisionTreeRegressor(),
                              {"max_depth": [1, 2], "min_samples_leaf": [1, 3]},
                              n_splits=3)
        search.fit(features, targets)
        assert len(search.result_.all_results) == 4

    def test_empty_grid_uses_defaults(self):
        rng = np.random.default_rng(5)
        features = rng.random((30, 2))
        targets = features[:, 0]
        search = GridSearchCV(LinearRegression(), {}, n_splits=3)
        search.fit(features, targets)
        assert search.best_params_ == {}

    def test_unfitted_access_raises(self):
        search = GridSearchCV(LinearRegression(), {})
        with pytest.raises(RuntimeError):
            _ = search.best_params_
        with pytest.raises(RuntimeError):
            search.predict(np.ones((2, 2)))
