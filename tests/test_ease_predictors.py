"""Tests for the three EASE predictors."""

import numpy as np
import pytest

from repro.generators import generate_rmat, generate_realworld_graph
from repro.ml import LinearRegression, RandomForestRegressor
from repro.partitioning import QUALITY_METRIC_NAMES
from repro.ease import (
    GraphProfiler,
    PartitioningQualityPredictor,
    PartitioningTimePredictor,
    ProcessingTimePredictor,
    AVERAGE_ITERATION_ALGORITHMS,
)


def _fast_quality_model(target):
    return RandomForestRegressor(n_estimators=8, max_depth=8, random_state=0)


@pytest.fixture(scope="module")
def profiler():
    return GraphProfiler(partitioner_names=("2d", "dbh", "hdrf", "ne"),
                         partition_counts=(2, 4),
                         processing_partition_count=4,
                         algorithms=("pagerank", "connected_components"))


@pytest.fixture(scope="module")
def training_dataset(profiler):
    graphs = [generate_rmat(128 * (1 + s % 3), 600 + 400 * s, seed=s,
                            graph_type="rmat")
              for s in range(6)]
    return profiler.profile(graphs, graphs[:4])


@pytest.fixture(scope="module")
def test_dataset(profiler):
    graphs = [generate_realworld_graph("soc", 200, 1500, seed=9),
              generate_realworld_graph("wiki", 250, 1800, seed=10)]
    return profiler.profile_processing(graphs)


class TestQualityPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, training_dataset):
        predictor = PartitioningQualityPredictor(
            model_factory=_fast_quality_model)
        predictor.fit(training_dataset.quality)
        return predictor

    def test_fit_on_empty_raises(self):
        with pytest.raises(ValueError):
            PartitioningQualityPredictor().fit([])

    def test_predict_before_fit_raises(self, training_dataset):
        fresh = PartitioningQualityPredictor()
        record = training_dataset.quality[0]
        with pytest.raises(RuntimeError):
            fresh.predict(record.properties, record.partitioner, 4)

    def test_predict_returns_all_metrics(self, predictor, training_dataset):
        record = training_dataset.quality[0]
        prediction = predictor.predict(record.properties, "ne", 4)
        metrics = prediction.as_dict()
        assert set(metrics) == set(QUALITY_METRIC_NAMES)
        assert all(value >= 1.0 for value in metrics.values())

    def test_training_error_is_reasonable(self, predictor, training_dataset):
        scores = predictor.evaluate(training_dataset.quality)
        assert scores["replication_factor"]["mape"] < 0.25
        assert scores["vertex_balance"]["mape"] < 0.25

    def test_generalises_to_unseen_graphs(self, predictor, test_dataset):
        scores = predictor.evaluate(test_dataset.quality)
        # Much looser bound: different graph family, tiny training set.
        assert scores["replication_factor"]["mape"] < 1.0

    def test_unknown_metric_raises(self, predictor, training_dataset):
        record = training_dataset.quality[0]
        with pytest.raises(ValueError):
            predictor.predict_metric("modularity", [record.properties],
                                     ["ne"], [4])

    def test_feature_importances(self, predictor):
        importances = predictor.feature_importances("replication_factor")
        assert importances
        assert sum(importances.values()) == pytest.approx(1.0, abs=1e-6)

    def test_aggregated_importances_group_partitioner(self, predictor):
        aggregated = predictor.aggregated_feature_importances("vertex_balance")
        assert "partitioner" in aggregated
        assert "degree_distribution" in aggregated
        assert not any(name.startswith("partitioner=") for name in aggregated)

    def test_non_tree_model_has_no_importances(self, training_dataset):
        predictor = PartitioningQualityPredictor(
            model_factory=lambda target: LinearRegression())
        predictor.fit(training_dataset.quality[:40])
        with pytest.raises(ValueError):
            predictor.feature_importances("replication_factor")

    def test_advanced_feature_set_for_replication_factor(self, training_dataset):
        predictor = PartitioningQualityPredictor(
            feature_set="basic", replication_feature_set="advanced",
            model_factory=_fast_quality_model)
        predictor.fit(training_dataset.quality)
        names = predictor._builders["replication_factor"].feature_names()
        assert "mean_local_clustering" in names
        balance_names = predictor._builders["vertex_balance"].feature_names()
        assert "mean_local_clustering" not in balance_names


class TestPartitioningTimePredictor:
    @pytest.fixture(scope="class")
    def predictor(self, training_dataset):
        return PartitioningTimePredictor().fit(training_dataset.partitioning_time)

    def test_fit_on_empty_raises(self):
        with pytest.raises(ValueError):
            PartitioningTimePredictor().fit([])

    def test_predictions_are_positive(self, predictor, training_dataset):
        record = training_dataset.partitioning_time[0]
        assert predictor.predict_one(record.properties, "ne") > 0

    def test_in_memory_predicted_slower_than_hashing(self, predictor,
                                                     training_dataset):
        record = training_dataset.partitioning_time[0]
        assert (predictor.predict_one(record.properties, "ne")
                > predictor.predict_one(record.properties, "2d"))

    def test_training_mape(self, predictor, training_dataset):
        scores = predictor.evaluate(training_dataset.partitioning_time)
        assert scores["mape"] < 0.4

    def test_predict_before_fit_raises(self, training_dataset):
        fresh = PartitioningTimePredictor()
        record = training_dataset.partitioning_time[0]
        with pytest.raises(RuntimeError):
            fresh.predict_one(record.properties, "ne")


class TestProcessingTimePredictor:
    @pytest.fixture(scope="class")
    def predictor(self, training_dataset):
        return ProcessingTimePredictor().fit(training_dataset.processing)

    def test_fit_on_empty_raises(self):
        with pytest.raises(ValueError):
            ProcessingTimePredictor().fit([])

    def test_one_model_per_algorithm(self, predictor):
        assert set(predictor.algorithms) == {"pagerank", "connected_components"}

    def test_unknown_algorithm_raises(self, predictor, training_dataset):
        record = training_dataset.processing[0]
        with pytest.raises(ValueError):
            predictor.predict_total_seconds("kcores", record.properties, 4,
                                            record.metrics)

    def test_iterations_scale_total_time(self, predictor, training_dataset):
        record = next(r for r in training_dataset.processing
                      if r.algorithm == "pagerank")
        short = predictor.predict_total_seconds("pagerank", record.properties,
                                                4, record.metrics,
                                                num_iterations=5)
        long = predictor.predict_total_seconds("pagerank", record.properties,
                                               4, record.metrics,
                                               num_iterations=50)
        assert long == pytest.approx(10 * short)

    def test_convergence_algorithm_ignores_iterations(self, predictor,
                                                      training_dataset):
        record = next(r for r in training_dataset.processing
                      if r.algorithm == "connected_components")
        a = predictor.predict_total_seconds("connected_components",
                                            record.properties, 4, record.metrics,
                                            num_iterations=5)
        b = predictor.predict_total_seconds("connected_components",
                                            record.properties, 4, record.metrics,
                                            num_iterations=50)
        assert a == pytest.approx(b)

    def test_evaluation_scores(self, predictor, training_dataset):
        scores = predictor.evaluate(training_dataset.processing)
        assert set(scores) == {"pagerank", "connected_components"}
        assert all(value["mape"] < 0.6 for value in scores.values())

    def test_extensibility_fit_single_algorithm(self, training_dataset, profiler):
        """Section IV-E: adding an algorithm retrains only its model."""
        predictor = ProcessingTimePredictor().fit(
            [r for r in training_dataset.processing if r.algorithm == "pagerank"])
        assert predictor.algorithms == ["pagerank"]
        predictor.fit_algorithm("connected_components",
                                training_dataset.processing)
        assert set(predictor.algorithms) == {"pagerank", "connected_components"}

    def test_fit_algorithm_without_records_raises(self, predictor):
        with pytest.raises(ValueError):
            predictor.fit_algorithm("sssp", [])

    def test_average_iteration_algorithm_set(self):
        assert "pagerank" in AVERAGE_ITERATION_ALGORITHMS
        assert "connected_components" not in AVERAGE_ITERATION_ALGORITHMS
