"""Tests for the bounded-work property estimators (:mod:`repro.graph.sketches`).

Approximate extraction must be deterministic per ``(graph, budget, seed)``,
must never exceed its wedge budget, must report calibrated Hoeffding
intervals, and must stay strictly separated from exact extraction in every
cache layer (artifact keys, runtime job/task ids, the properties CLI).
"""

import json
import math
import os

import numpy as np
import pytest

from repro.cli import main
from repro.generators import generate_rmat
from repro.graph import (
    Graph,
    PropertyEstimate,
    approximate_properties,
    approximate_triangle_stats,
    compute_properties,
    graph_fingerprint,
    hoeffding_half_width,
    properties_artifact_key,
    save_npz,
)
from repro.graph.property_engine import _oriented_pair_count
from repro.runtime import ArtifactStore
from repro.runtime.jobs import PropertiesJob
from repro.runtime.tasks import PropertiesTask


def _sampling_graph(seed=0):
    """A graph whose exact wedge enumeration exceeds the test budgets."""
    return generate_rmat(256, 2000, seed=seed)


#: Budget small enough that _sampling_graph always overflows it.
SMALL_BUDGET = 500


class TestHoeffdingHalfWidth:
    def test_known_value(self):
        # m = 1000, 95%: sqrt(ln(40) / 2000)
        expected = math.sqrt(math.log(2.0 / 0.05) / (2.0 * 1000))
        assert hoeffding_half_width(1000, 0.95) == pytest.approx(expected)

    def test_shrinks_with_samples_and_grows_with_confidence(self):
        assert hoeffding_half_width(400, 0.95) < hoeffding_half_width(100, 0.95)
        assert hoeffding_half_width(100, 0.99) > hoeffding_half_width(100, 0.95)

    def test_zero_samples_is_infinite(self):
        assert hoeffding_half_width(0, 0.95) == float("inf")

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_invalid_confidence_raises(self, confidence):
        with pytest.raises(ValueError):
            hoeffding_half_width(10, confidence)


class TestPropertyEstimate:
    def test_exact_is_zero_width(self):
        estimate = PropertyEstimate.exact(3.5)
        assert estimate.lower == estimate.value == estimate.upper == 3.5
        assert estimate.samples == 0
        assert estimate.half_width == 0.0

    def test_from_samples_interval_and_scale(self):
        estimate = PropertyEstimate.from_samples(2.0, 100, 0.95, scale=10.0)
        half = hoeffding_half_width(100, 0.95) * 10.0
        assert estimate.lower == pytest.approx(2.0 - half)
        assert estimate.upper == pytest.approx(2.0 + half)
        assert estimate.half_width == pytest.approx(half)

    def test_lower_bound_clipped_at_zero(self):
        estimate = PropertyEstimate.from_samples(0.01, 10, 0.95)
        assert estimate.lower == 0.0

    def test_as_dict_round_trips_fields(self):
        estimate = PropertyEstimate.from_samples(0.4, 50, 0.9)
        payload = estimate.as_dict()
        assert set(payload) == {"value", "lower", "upper", "samples",
                                "confidence"}
        assert payload["samples"] == 50


class TestApproximateTriangleStats:
    @pytest.mark.parametrize("budget", [0, -5])
    def test_invalid_budget_raises(self, budget):
        graph = generate_rmat(32, 60, seed=0)
        with pytest.raises(ValueError):
            approximate_triangle_stats(graph, wedge_budget=budget)

    def test_empty_graph_is_exact_zero(self):
        graph = Graph(np.array([], dtype=np.int64),
                      np.array([], dtype=np.int64), num_vertices=0)
        stats = approximate_triangle_stats(graph, wedge_budget=10)
        assert stats.exact and not stats.budget_exhausted
        assert stats.wedges_used == 0
        assert stats.mean_triangles.value == 0.0
        assert stats.global_clustering.value == 0.0

    def test_wedgeless_graph_is_exact_zero(self):
        graph = Graph(np.array([0]), np.array([1]), num_vertices=4)
        stats = approximate_triangle_stats(graph, wedge_budget=10)
        assert stats.exact
        assert stats.mean_triangles.value == 0.0

    def test_exact_within_budget_matches_exact_extraction(self):
        graph = generate_rmat(64, 300, seed=1)
        budget = _oriented_pair_count(graph) + 1
        stats = approximate_triangle_stats(graph, wedge_budget=budget)
        assert stats.exact and not stats.budget_exhausted
        assert stats.wedges_used <= budget
        assert stats.mean_triangles.half_width == 0.0
        exact = compute_properties(graph, exact_triangles=True)
        assert stats.mean_triangles.value == pytest.approx(
            exact.mean_triangles)
        assert stats.mean_local_clustering.value == pytest.approx(
            exact.mean_local_clustering)

    def test_sampling_respects_budget(self):
        graph = _sampling_graph()
        assert _oriented_pair_count(graph) > SMALL_BUDGET  # sampling engages
        stats = approximate_triangle_stats(graph, wedge_budget=SMALL_BUDGET)
        assert not stats.exact and stats.budget_exhausted
        assert 0 < stats.wedges_used <= SMALL_BUDGET
        for estimate in (stats.mean_triangles, stats.mean_local_clustering,
                         stats.global_clustering):
            assert estimate.lower <= estimate.value <= estimate.upper
            assert estimate.samples > 0
            assert estimate.half_width > 0.0

    def test_deterministic_per_seed(self):
        graph = _sampling_graph()
        first = approximate_triangle_stats(graph, wedge_budget=SMALL_BUDGET,
                                           seed=7)
        second = approximate_triangle_stats(graph, wedge_budget=SMALL_BUDGET,
                                            seed=7)
        assert first.as_dict() == second.as_dict()
        other = approximate_triangle_stats(graph, wedge_budget=SMALL_BUDGET,
                                           seed=8)
        assert other.seed != first.seed

    def test_interval_calibration(self):
        """Hoeffding intervals must cover the truth (they are conservative)."""
        graph = _sampling_graph(seed=3)
        truth = compute_properties(graph, exact_triangles=True)
        budget = 2000
        assert _oriented_pair_count(graph) > budget
        covered_tri = covered_global = 0
        seeds = range(20)
        for seed in seeds:
            stats = approximate_triangle_stats(graph, wedge_budget=budget,
                                               seed=seed)
            if (stats.mean_triangles.lower <= truth.mean_triangles
                    <= stats.mean_triangles.upper):
                covered_tri += 1
            exact_global = (stats.global_clustering.lower
                            <= _true_global_clustering(graph)
                            <= stats.global_clustering.upper)
            covered_global += bool(exact_global)
        # 95% nominal coverage, Hoeffding slack on top: 18/20 is a very
        # loose floor (typically 20/20).
        assert covered_tri >= 18
        assert covered_global >= 18


def _true_global_clustering(graph):
    """Closed-wedge fraction from the exact engine (3T / W)."""
    from repro.graph.property_engine import triangle_counts_engine

    csr = graph.undirected_simple_csr()
    degrees = np.diff(csr.indptr)
    total_wedges = int(((degrees * (degrees - 1)) // 2).sum())
    counts = triangle_counts_engine(graph)
    return float(counts.sum()) / total_wedges if total_wedges else 0.0


class TestApproximateProperties:
    def test_non_triangle_features_are_exact(self):
        graph = _sampling_graph(seed=5)
        properties, stats = approximate_properties(graph,
                                                   wedge_budget=SMALL_BUDGET)
        exact = compute_properties(graph, exact_triangles=True)
        assert properties.num_edges == exact.num_edges
        assert properties.num_vertices == exact.num_vertices
        assert properties.mean_degree == pytest.approx(exact.mean_degree)
        assert properties.density == pytest.approx(exact.density)
        assert properties.in_degree_skewness == pytest.approx(
            exact.in_degree_skewness)
        assert properties.out_degree_skewness == pytest.approx(
            exact.out_degree_skewness)
        assert properties.mean_triangles == stats.mean_triangles.value
        assert (properties.mean_local_clustering
                == stats.mean_local_clustering.value)

    def test_empty_graph(self):
        graph = Graph(np.array([], dtype=np.int64),
                      np.array([], dtype=np.int64), num_vertices=0)
        properties, stats = approximate_properties(graph, wedge_budget=10)
        assert properties.num_vertices == 0 and stats.exact


class TestModeCacheSeparation:
    """Exact and approximate results must never share a cache entry."""

    def test_artifact_key_modes(self):
        exact_key = properties_artifact_key("fp", False, 0)
        assert exact_key == ("properties", "fp", False, 0)  # legacy layout
        approx_key = properties_artifact_key("fp", False, 0,
                                             mode="approximate",
                                             wedge_budget=1000)
        assert approx_key != exact_key
        assert approx_key[-2:] == ("approximate", 1000)
        other_budget = properties_artifact_key("fp", False, 0,
                                               mode="approximate",
                                               wedge_budget=2000)
        assert other_budget != approx_key
        with pytest.raises(ValueError):
            properties_artifact_key("fp", False, 0, mode="sketchy")

    def test_compute_properties_rejects_unknown_mode(self):
        graph = generate_rmat(32, 60, seed=0)
        with pytest.raises(ValueError):
            compute_properties(graph, mode="sketchy")

    def test_store_memoizes_per_mode_and_budget(self):
        graph = _sampling_graph(seed=2)
        store = ArtifactStore()
        exact = compute_properties(graph, exact_triangles=False, store=store)
        approx_first = compute_properties(graph, exact_triangles=False,
                                          store=store, mode="approximate",
                                          wedge_budget=SMALL_BUDGET)
        assert len(store._memory) == 2  # distinct keys, no collision
        hits_before = store.hits
        approx_again = compute_properties(graph, exact_triangles=False,
                                          store=store, mode="approximate",
                                          wedge_budget=SMALL_BUDGET)
        assert store.hits == hits_before + 1
        assert approx_again is approx_first  # restored, not recomputed
        exact_again = compute_properties(graph, exact_triangles=False,
                                         store=store)
        assert exact_again is exact
        # A different budget is a different artifact.
        compute_properties(graph, exact_triangles=False, store=store,
                           mode="approximate", wedge_budget=SMALL_BUDGET * 2)
        assert len(store._memory) == 3

    def test_properties_job_and_task_keys(self):
        legacy = PropertiesJob("fp", True, 0)
        assert legacy.key == ("properties", "fp", True, 0)
        approx_job = PropertiesJob("fp", True, 0, mode="approximate",
                                   wedge_budget=1000)
        assert approx_job.key == ("properties", "fp", True, 0,
                                  "approximate", 1000)
        legacy_task = PropertiesTask("fp", True, 0)
        assert legacy_task.task_id == legacy.key
        approx_task = PropertiesTask("fp", True, 0, mode="approximate",
                                     wedge_budget=1000)
        assert approx_task.task_id == approx_job.key

    def test_properties_task_executes_approximate(self):
        graph = _sampling_graph(seed=4)
        store = ArtifactStore()
        task = PropertiesTask(graph_fingerprint(graph), True, 0,
                              mode="approximate",
                              wedge_budget=SMALL_BUDGET)
        result = task.execute(graph, store, {})
        assert result["computed"] == 1
        reference, _ = approximate_properties(graph,
                                              wedge_budget=SMALL_BUDGET)
        assert result["properties"].mean_triangles == pytest.approx(
            reference.mean_triangles)
        assert task.restore(store)["properties"] is result["properties"]


class TestPropertiesCLI:
    def test_approximate_mode_flag(self, tmp_path, capsys):
        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        for seed in range(2):
            graph = generate_rmat(96, 500 + 100 * seed, seed=seed)
            save_npz(graph, str(graphs_dir / f"g{seed}.npz"))
        output = str(tmp_path / "props")
        exit_code = main(["properties", "--graphs", str(graphs_dir),
                          "--output", output, "--mode", "approximate",
                          "--wedge-budget", "512"])
        assert exit_code == 0
        files = sorted(name for name in os.listdir(output)
                       if name.endswith(".properties.json"))
        assert len(files) == 2
        with open(os.path.join(output, files[0]), encoding="utf-8") as handle:
            payload = json.load(handle)
        assert "mean_triangles" in payload and "mean_degree" in payload
