"""Tests for the observability layer: metrics registry + Prometheus
rendering, prefork scrape-dir aggregation, span tracing with cross-process
stitching, structured logging, the new CLI surfaces, and the import lint
that keeps ``repro.obs`` stdlib-only.

The two ISSUE acceptance claims live here:

* ``GET /metrics`` on a multi-worker prefork server returns one merged
  Prometheus page whose counters equal the sum across all worker pids;
* ``repro profile`` on the worker-pool backend emits a JSONL trace in which
  every worker-side ``task.execute`` span parents (via the driver's
  ``task.dispatch`` span) back to the single ``profile.run`` root.
"""

import ast
import io
import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.generators import generate_rmat
from repro.graph import compute_properties
from repro.ease import EASE, GraphProfiler
from repro.ease.persistence import save_ease
from repro.obs import get_registry
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    ScrapeDir,
    log_buckets,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import (
    configure_tracing,
    disable_tracing,
    envelope_context,
    read_trace,
    span,
    span_tree,
    task_span,
    tracing_enabled,
)
from repro.runtime import WorkerPoolBackend
from repro.runtime.backends import _claim_next

PARTITIONERS = ("2d", "dbh", "ne")


@pytest.fixture(scope="module")
def trained_system():
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(3)]
    return EASE(partitioner_names=PARTITIONERS).train(
        profiler.profile(graphs, graphs))


@pytest.fixture()
def no_tracing():
    """Tracing and logging are process-global; leave both pristine."""
    disable_tracing()
    yield
    disable_tracing()
    configure_logging()


# --------------------------------------------------------------------------- #
# Registry primitives
# --------------------------------------------------------------------------- #
class TestMetricsPrimitives:
    def test_counter_counts_per_label_set(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", "requests",
                                  labels=("route",))
        family.labels("/a").inc()
        family.labels("/a").inc(2)
        family.labels("/b").inc()
        assert family.labels("/a").value == 3
        assert family.labels("/b").value == 1

    def test_counter_rejects_negative_increment(self):
        family = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            family.inc(-1)

    def test_gauge_set_inc_dec_and_set_max(self):
        gauge = MetricsRegistry().gauge("inflight")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3
        gauge.set_max(10)
        gauge.set_max(5)  # lower than current max: no effect
        assert gauge.value == 10

    def test_histogram_count_sum_and_monotone_quantiles(self):
        histogram = MetricsRegistry().histogram(
            "latency_seconds", buckets=log_buckets(0.5, 2.0, 6))
        for value in range(1, 9):
            histogram.observe(float(value))
        assert histogram.count == 8
        assert histogram.sum == 36.0
        p50, p90, p99 = (histogram.quantile(q) for q in (0.5, 0.9, 0.99))
        assert 0.0 < p50 <= p90 <= p99
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "hits")
        assert registry.counter("hits_total") is first
        assert registry.get("hits_total") is first
        assert registry.get("absent") is None

    def test_type_and_label_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.gauge("x_total", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("b",))

    def test_label_arity_enforced(self):
        family = MetricsRegistry().counter("y_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")


# --------------------------------------------------------------------------- #
# Prometheus text rendering
# --------------------------------------------------------------------------- #
class TestPrometheusRendering:
    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "All requests",
                         labels=("route",)).labels("/v1/select").inc(7)
        registry.gauge("inflight", "In-flight requests").set(2)
        text = registry.render()
        assert "# HELP req_total All requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/v1/select"} 7' in text
        assert "# TYPE inflight gauge" in text
        assert "inflight 2" in text.splitlines()

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 5.0):
            histogram.observe(value)
        lines = registry.render().splitlines()
        assert 'h_seconds_bucket{le="1"} 1' in lines
        assert 'h_seconds_bucket{le="2"} 3' in lines
        assert 'h_seconds_bucket{le="+Inf"} 4' in lines
        assert "h_seconds_count 4" in lines
        assert any(line.startswith("h_seconds_sum ") for line in lines)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", labels=("path",)).labels(
            'a"b\\c\nd').inc()
        assert 'e_total{path="a\\"b\\\\c\\nd"} 1' in registry.render()


# --------------------------------------------------------------------------- #
# Pool merge semantics
# --------------------------------------------------------------------------- #
def _snapshot_with(counter=0, gauge=None, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("tasks_total", "tasks").inc(counter)
    if gauge is not None:
        registry.gauge("rate", "rate").set(gauge)
    histogram = registry.histogram("wait_seconds", buckets=(1.0, 2.0))
    for value in observations:
        histogram.observe(value)
    return registry.snapshot()


class TestMergeSnapshots:
    def test_counters_and_histograms_sum_across_pids(self):
        merged = merge_snapshots({
            101: _snapshot_with(counter=3, observations=(0.5, 1.5)),
            202: _snapshot_with(counter=4, observations=(5.0,)),
        })
        assert merged["tasks_total"]["children"][()] == 7
        histogram = merged["wait_seconds"]["children"][()]
        assert histogram["count"] == 3
        assert histogram["sum"] == 7.0
        assert histogram["counts"] == [1, 1, 1]

    def test_gauges_grow_a_pid_label_instead_of_summing(self):
        merged = merge_snapshots({
            101: _snapshot_with(gauge=10.0),
            202: _snapshot_with(gauge=30.0),
        })
        assert merged["rate"]["labels"] == ["pid"]
        assert merged["rate"]["children"] == {("101",): 10.0,
                                              ("202",): 30.0}
        # The merged view renders one series per worker.
        text = render_prometheus(merged)
        assert 'rate{pid="101"} 10' in text
        assert 'rate{pid="202"} 30' in text


# --------------------------------------------------------------------------- #
# ScrapeDir: slot files, dead-pid hygiene, torn writes
# --------------------------------------------------------------------------- #
def _write_slot(scrape: ScrapeDir, pid: int, snapshot) -> str:
    path = scrape.slot_path(pid)
    with open(path, "wb") as handle:
        pickle.dump({"pid": pid, "time": time.time(),
                     "snapshot": snapshot}, handle)
    return path


class TestScrapeDir:
    def test_flush_and_merged_render_cover_live_slots(self, tmp_path):
        scrape = ScrapeDir(str(tmp_path / "scrape"))
        registry = MetricsRegistry()
        registry.counter("own_total").inc(2)
        scrape.flush(registry)
        # A second live process: the parent of this test run.
        _write_slot(scrape, os.getppid(), _snapshot_with(counter=5))
        merged, pids = scrape.merged_snapshot()
        assert set(pids) == {os.getpid(), os.getppid()}
        assert merged["own_total"]["children"][()] == 2
        assert merged["tasks_total"]["children"][()] == 5
        text = scrape.render(registry)
        assert "own_total 2" in text.splitlines()

    def test_dead_pid_slots_are_skipped_and_unlinked(self, tmp_path):
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        dead_pid = probe.pid
        scrape = ScrapeDir(str(tmp_path / "scrape"))
        _write_slot(scrape, os.getpid(), _snapshot_with(counter=1))
        dead_path = _write_slot(scrape, dead_pid, _snapshot_with(counter=9))

        # Offline inspection keeps the dead worker's numbers ...
        merged, pids = scrape.merged_snapshot(include_dead=True)
        assert set(pids) == {os.getpid(), dead_pid}
        assert merged["tasks_total"]["children"][()] == 10
        assert os.path.exists(dead_path)

        # ... the live scrape path drops and reaps them.
        merged, pids = scrape.merged_snapshot()
        assert pids == [os.getpid()]
        assert merged["tasks_total"]["children"][()] == 1
        assert not os.path.exists(dead_path)

    def test_torn_slot_writes_are_skipped(self, tmp_path):
        scrape = ScrapeDir(str(tmp_path / "scrape"))
        _write_slot(scrape, os.getpid(), _snapshot_with(counter=3))
        with open(scrape.slot_path(os.getppid()), "wb") as handle:
            handle.write(b"\x80\x04 torn mid-write")
        merged, pids = scrape.merged_snapshot()
        assert pids == [os.getpid()]
        assert merged["tasks_total"]["children"][()] == 3

    def test_non_slot_files_are_ignored(self, tmp_path):
        scrape = ScrapeDir(str(tmp_path / "scrape"))
        with open(os.path.join(scrape.path, "notes.txt"), "w") as handle:
            handle.write("not a slot")
        with open(os.path.join(scrape.path, "abc.slot"), "w") as handle:
            handle.write("non-numeric stem")
        merged, pids = scrape.merged_snapshot()
        assert merged == {} and pids == []


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #
class TestStructuredLogging:
    @pytest.fixture(autouse=True)
    def restore_config(self):
        yield
        configure_logging()

    def test_json_format_emits_one_object_per_line(self):
        stream = io.StringIO()
        configure_logging(level="debug", format="json", stream=stream)
        logger = get_logger("repro.test")
        logger.info("request served", route="/v1/select", seconds=0.25)
        record = json.loads(stream.getvalue())
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["event"] == "request served"
        assert record["route"] == "/v1/select"
        assert record["seconds"] == 0.25

    def test_level_gate_suppresses_below_threshold(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        logger = get_logger("repro.test")
        logger.info("hidden")
        logger.warning("visible")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "visible" in lines[0]

    def test_human_format_keeps_event_text_verbatim(self):
        # The serve CLI's URL announcement is parsed with
        # ``line.rsplit(" on ", 1)`` by tests and the load benchmark; the
        # human format must keep the event text at the end of the line.
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("repro.serve").info(
            "serving model 'ease' version None on http://127.0.0.1:8080")
        line = stream.getvalue().strip()
        assert line.rsplit(" on ", 1)[1] == "http://127.0.0.1:8080"
        assert " INFO    repro.serve  serving model" in line

    def test_invalid_level_and_format_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")
        with pytest.raises(ValueError):
            configure_logging(format="xml")

    def test_worker_cli_exit_line_survives_in_json_format(self, tmp_path,
                                                          capsys):
        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0)
        backend.start({}, None)
        assert main(["worker", "--queue-dir", queue_dir, "--drain",
                     "--poll-interval", "0.01", "--log-format",
                     "json"]) == 0
        record = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert record["event"] == "worker exiting after 0 tasks"
        assert record["logger"] == "repro.worker"


# --------------------------------------------------------------------------- #
# Trace units
# --------------------------------------------------------------------------- #
class TestTraceUnits:
    def test_spans_are_noops_until_configured(self, no_tracing):
        assert not tracing_enabled()
        with span("anything") as context:
            assert context is None
        assert envelope_context() is None

    def test_nested_spans_share_a_trace_and_parent_correctly(self, tmp_path,
                                                             no_tracing):
        directory = str(tmp_path / "trace")
        configure_tracing(directory)
        with span("outer", attrs={"k": 1}) as outer:
            with span("inner") as inner:
                assert inner["trace_id"] == outer["trace_id"]
        records = read_trace(directory)
        by_name = {record["name"]: record for record in records}
        assert by_name["inner"]["parent_id"] == outer["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attrs"] == {"k": 1}
        assert by_name["outer"]["duration"] >= by_name["inner"]["duration"]

    def test_envelope_context_carries_the_trace_dir(self, tmp_path,
                                                    no_tracing):
        directory = str(tmp_path / "trace")
        configure_tracing(directory)
        assert envelope_context() is None  # no span open yet
        with span("driver") as context:
            envelope = envelope_context()
        assert envelope == {"trace_id": context["trace_id"],
                            "span_id": context["span_id"],
                            "trace_dir": directory}

    def test_task_span_autoconfigures_an_unconfigured_process(self, tmp_path,
                                                              no_tracing):
        # Simulates a queue worker: tracing off, the envelope context alone
        # must bring the span into the driver's trace directory.
        directory = str(tmp_path / "trace")
        envelope = {"trace_id": "t" * 32, "span_id": "s" * 16,
                    "trace_dir": directory}
        assert not tracing_enabled()
        with task_span(envelope, "task.execute", attrs={"kind": "partition"}):
            pass
        assert tracing_enabled()
        records = read_trace(directory)
        assert len(records) == 1
        assert records[0]["trace_id"] == "t" * 32
        assert records[0]["parent_id"] == "s" * 16
        with task_span(None, "task.execute") as context:
            assert context is None  # untraced envelope: no-op

    def test_read_trace_filters_by_id_and_skips_torn_lines(self, tmp_path,
                                                           no_tracing):
        directory = str(tmp_path / "trace")
        configure_tracing(directory)
        with span("first"):
            pass
        with span("second") as second:
            pass
        path = os.path.join(directory, f"spans-{os.getpid()}.jsonl")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "truncat')
        records = read_trace(directory)
        assert [record["name"] for record in records] == ["first", "second"]
        only = read_trace(directory, trace_id=second["trace_id"])
        assert [record["name"] for record in only] == ["second"]

    def test_span_tree_nests_children_and_events(self, tmp_path, no_tracing):
        from repro.obs.trace import add_event

        directory = str(tmp_path / "trace")
        configure_tracing(directory)
        with span("root"):
            with span("child"):
                add_event("milestone", {"n": 1})
        roots = span_tree(read_trace(directory))
        assert len(roots) == 1 and roots[0]["name"] == "root"
        child, = roots[0]["children"]
        assert child["name"] == "child"
        assert [event["name"] for event in child["events"]] == ["milestone"]
        assert child["events"][0]["attrs"] == {"n": 1}

    def test_escaping_exception_is_recorded(self, tmp_path, no_tracing):
        directory = str(tmp_path / "trace")
        configure_tracing(directory)
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        record, = read_trace(directory)
        assert record["attrs"]["error"] == "RuntimeError: boom"


# --------------------------------------------------------------------------- #
# Requeue-after-crash: span event + counter
# --------------------------------------------------------------------------- #
class TestRequeueObservability:
    def test_requeue_stale_emits_event_and_counter(self, tmp_path,
                                                   no_tracing):
        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0)
        backend.start({}, None)
        with open(os.path.join(queue_dir, "tasks", "abc.task"),
                  "wb") as handle:
            pickle.dump({"task_id": ("t",)}, handle)
        assert _claim_next(queue_dir) is not None
        # The worker "crashed" here: the claim file is orphaned.

        family = get_registry().get("runtime_requeued_tasks_total")
        before = family.value if family is not None else 0.0
        directory = str(tmp_path / "trace")
        configure_tracing(directory)
        with span("profile.run") as root:
            assert backend.requeue_stale(max_age_seconds=0.0) == 1
        disable_tracing()

        after = get_registry().get("runtime_requeued_tasks_total").value
        assert after == before + 1
        events = [record for record in read_trace(directory)
                  if record["type"] == "event"]
        assert len(events) == 1
        event = events[0]
        assert event["name"] == "requeue_stale"
        assert event["attrs"] == {"requeued": 1, "heartbeat_vetoes": 0,
                                  "max_age_seconds": 0.0}
        assert event["span_id"] == root["span_id"]


# --------------------------------------------------------------------------- #
# ACCEPTANCE: worker-pool profile run emits one stitched trace
# --------------------------------------------------------------------------- #
class TestWorkerPoolTraceStitching:
    def test_every_task_span_parents_back_to_the_profile_root(self, tmp_path,
                                                              no_tracing):
        directory = str(tmp_path / "trace")
        profiler = GraphProfiler(partitioner_names=("2d", "dbh"),
                                 partition_counts=(2,),
                                 processing_partition_count=2,
                                 algorithms=("pagerank",), seed=0,
                                 backend="worker", jobs=2)
        graphs = [generate_rmat(96, 500, seed=s, graph_type="rmat")
                  for s in range(2)]
        configure_tracing(directory)
        try:
            profiler.profile(graphs, graphs)
        finally:
            disable_tracing()

        spans = [record for record in read_trace(directory)
                 if record["type"] == "span"]
        assert len({record["trace_id"] for record in spans}) == 1
        by_id = {record["span_id"]: record for record in spans}
        roots = [record for record in spans if record["parent_id"] is None]
        assert [record["name"] for record in roots] == ["profile.run"]

        driver_pid = os.getpid()
        executes = [record for record in spans
                    if record["name"] == "task.execute"]
        assert executes, "no worker-side task spans were exported"
        for record in executes:
            # Executed in a worker process, dispatched by the driver.
            assert record["pid"] != driver_pid
            dispatch = by_id[record["parent_id"]]
            assert dispatch["name"] == "task.dispatch"
            assert dispatch["pid"] == driver_pid
            assert dispatch["attrs"]["backend"] == "worker"
            ancestor, hops = dispatch, 0
            while ancestor["parent_id"] is not None:
                ancestor = by_id[ancestor["parent_id"]]
                hops += 1
                assert hops < 10, "dispatch span nested unexpectedly deep"
            assert ancestor["name"] == "profile.run"

        # The same records stitch into one tree, and the scheduler's task
        # metrics landed in the process registry alongside the spans.
        tree = span_tree(spans)
        assert len(tree) == 1 and tree[0]["name"] == "profile.run"
        task_seconds = get_registry().get("runtime_task_seconds")
        assert task_seconds is not None
        kinds = {labels[0] for labels, child in task_seconds.children()
                 if child.count > 0}
        assert "partition" in kinds

        # ``repro trace show`` renders the same directory.
        import contextlib

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["trace", "show", "--trace-dir", directory]) == 0
        shown = buffer.getvalue()
        assert f"trace {spans[0]['trace_id']}" in shown
        assert "profile.run" in shown and "task.execute" in shown


# --------------------------------------------------------------------------- #
# ACCEPTANCE: prefork /metrics is one pool-merged page
# --------------------------------------------------------------------------- #
def _select_payload(graph):
    return {"properties": compute_properties(
        graph, exact_triangles=False).as_dict(),
        "algorithm": "pagerank", "num_partitions": 2, "goal": "end_to_end"}


def _slot_counter_totals(scrape_path: str, metric: str):
    """Per-pid totals of one counter family, straight from the slot files."""
    totals = {}
    for name in sorted(os.listdir(scrape_path)):
        if not name.endswith(ScrapeDir.SLOT_SUFFIX):
            continue
        with open(os.path.join(scrape_path, name), "rb") as handle:
            payload = pickle.load(handle)
        family = payload["snapshot"].get(metric)
        totals[payload["pid"]] = (sum(family["children"].values())
                                  if family else 0.0)
    return totals


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
class TestPreforkMetricsAggregation:
    WORKERS = 4
    REQUESTS = 12

    def test_metrics_page_sums_counters_across_worker_pids(self, tmp_path,
                                                           trained_system):
        bundle = str(tmp_path / "ease.pkl")
        save_ease(trained_system, bundle)
        scrape_path = str(tmp_path / "scrape")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--model", f"default={bundle}",
             "--workers", str(self.WORKERS), "--port", "0",
             "--batch-wait-ms", "1", "--scrape-dir", scrape_path],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        url = [None]

        def find_url():
            for line in process.stdout:
                if " on http://" in line:
                    url[0] = line.rsplit(" on ", 1)[1].strip()
                    return

        reader = threading.Thread(target=find_url, daemon=True)
        reader.start()
        reader.join(timeout=60)
        try:
            assert url[0], "server never announced its URL"
            graph = generate_rmat(128, 900, seed=33)
            body = json.dumps(_select_payload(graph)).encode("utf-8")
            for _ in range(self.REQUESTS):
                request = urllib.request.Request(
                    f"{url[0]}/v1/select", data=body,
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=30) as response:
                    assert response.status == 200

            # The kernel round-robins accepts; confirm >1 worker pid served
            # (healthz does not touch the request counters).
            pids_seen = set()
            for _ in range(60):
                with urllib.request.urlopen(f"{url[0]}/healthz",
                                            timeout=30) as response:
                    pids_seen.add(json.load(response)["pid"])
                if len(pids_seen) >= 2:
                    break
            assert len(pids_seen) >= 2, f"only saw worker pids {pids_seen}"

            # Any worker answers /metrics with the pool-merged page; the
            # per-slot flush trails the response, so poll briefly.
            deadline = time.time() + 30
            while True:
                with urllib.request.urlopen(f"{url[0]}/metrics",
                                            timeout=30) as response:
                    content_type = response.headers.get("Content-Type", "")
                    exposition = response.read().decode("utf-8")
                per_pid = _slot_counter_totals(scrape_path,
                                               "serving_requests_total")
                if (sum(per_pid.values()) >= self.REQUESTS
                        or time.time() > deadline):
                    break
                time.sleep(0.1)
            assert content_type.startswith("text/plain; version=0.0.4")

            # Every worker owns a slot, and the merged page's counter is
            # exactly the sum of the per-pid slot values.
            assert len(per_pid) == self.WORKERS
            assert sum(per_pid.values()) == self.REQUESTS

            def metric_sum(name):
                total, found = 0.0, False
                for line in exposition.splitlines():
                    if line.startswith(name + "{") or line == name or \
                            line.startswith(name + " "):
                        total += float(line.rsplit(" ", 1)[1])
                        found = True
                assert found, f"{name} absent from /metrics"
                return total

            assert metric_sum("serving_requests_total") == self.REQUESTS
            assert metric_sum(
                "serving_request_seconds_count") == self.REQUESTS
            assert metric_sum("serving_admitted_total") == self.REQUESTS
            # Gauges keep per-worker truth: one pid-labeled series each.
            import re

            gauge_pids = set(re.findall(
                r'serving_inflight_requests\{[^}]*pid="(\d+)"\}',
                exposition))
            assert len(gauge_pids) == self.WORKERS
            assert str(process.pid) not in gauge_pids
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        assert process.returncode == 0

        # The scrape dir outlives the pool for offline inspection.
        import contextlib

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(["metrics", "--scrape-dir", scrape_path]) == 0
        offline = buffer.getvalue()
        assert "serving_requests_total" in offline


# --------------------------------------------------------------------------- #
# Import lint: obs stays stdlib-only; core imports obs, never the reverse
# --------------------------------------------------------------------------- #
def _import_roots(path: str):
    """(lineno, root, level) of every import in one source file."""
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name.split(".")[0], 0
        elif isinstance(node, ast.ImportFrom):
            yield node.lineno, (node.module or "").split(".")[0], node.level


class TestObsImportLint:
    def test_obs_imports_stdlib_only(self):
        import repro.obs

        package_dir = os.path.dirname(repro.obs.__file__)
        allowed_roots = set(sys.stdlib_module_names)
        offenders = []
        for filename in sorted(os.listdir(package_dir)):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(package_dir, filename)
            for lineno, root, level in _import_roots(path):
                if level >= 2:
                    # ``from .. import x`` would reach back into repro
                    # proper — the dependency direction the lint forbids.
                    offenders.append(f"{filename}:{lineno}: relative "
                                     f"import above the obs package")
                elif level == 0 and root and root not in allowed_roots:
                    offenders.append(f"{filename}:{lineno}: {root}")
        assert not offenders, \
            "repro.obs must stay stdlib-only, found: " + str(offenders)

    @pytest.mark.parametrize("module_path", [
        "serving/core.py",
        "serving/service.py",
        "runtime/scheduler.py",
        "runtime/executor.py",
        "runtime/backends.py",
        "runtime/tasks.py",
        "runtime/artifacts.py",
        "partitioning/kernels.py",
        "graph/properties.py",
        "cli.py",
    ])
    def test_core_modules_import_obs(self, module_path):
        import repro

        path = os.path.join(os.path.dirname(repro.__file__), module_path)
        imports_obs = any(
            (level > 0 and root == "obs")
            or (level == 0 and root == "repro" and "obs" in line_text)
            for lineno, root, level in _import_roots(path)
            for line_text in [_source_line(path, lineno)])
        assert imports_obs, f"{module_path} is expected to be instrumented " \
                            "through repro.obs"


def _source_line(path: str, lineno: int) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            if number == lineno:
                return line
    return ""
