"""Equality and unit tests for the vectorized graph-property engine.

The engine must be *identical* to the seed implementations, not just close:
exact triangle counts are asserted array-equal and full ``GraphProperties``
bundles field-equal (``==`` on the dataclass compares floats exactly) across
every generator family, adversarial edge lists, and the sampled-estimator
path with its seeded vertex sample.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import (
    generate_barabasi_albert,
    generate_erdos_renyi,
    generate_realworld_graph,
    generate_rmat,
)
from repro.graph import (
    Graph,
    compute_properties,
    compute_properties_batch,
    graph_fingerprint,
    properties_artifact_key,
    triangle_counts,
    local_clustering_coefficients,
)
from repro.graph.property_engine import (
    sampled_triangle_stats_engine,
    triangle_counts_engine,
)
from repro.graph.properties import _sampled_triangle_stats
from repro.runtime import ArtifactStore


def _family_graphs():
    return [
        generate_erdos_renyi(200, 1500, seed=11),
        generate_barabasi_albert(250, 4, seed=7),
        generate_rmat(256, 2400, seed=3),
        generate_realworld_graph("soc", 220, 1800, seed=5),
        generate_realworld_graph("web", 220, 1800, seed=6),
    ]


edge_lists = st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40)),
                      min_size=0, max_size=250)


class TestSimpleCSR:
    def test_sorted_deduplicated_selfloop_free(self):
        graph = Graph.from_edges(
            [(0, 1), (1, 0), (0, 1), (2, 2), (3, 1), (1, 3), (4, 0)],
            num_vertices=6)
        csr = graph.undirected_simple_csr()
        for v in range(graph.num_vertices):
            neighbors = csr.neighbors(v)
            reference = np.unique(np.concatenate(
                [graph.dst[graph.src == v], graph.src[graph.dst == v]]))
            reference = reference[reference != v]
            np.testing.assert_array_equal(neighbors, reference)

    def test_cached(self, small_rmat_graph):
        assert (small_rmat_graph.undirected_simple_csr()
                is small_rmat_graph.undirected_simple_csr())

    def test_empty_graph(self):
        csr = Graph.empty(0).undirected_simple_csr()
        assert csr.indptr.tolist() == [0]
        assert csr.indices.size == 0

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_neighbor_sets(self, edges):
        graph = Graph.from_edges(edges, num_vertices=41)
        csr = graph.undirected_simple_csr()
        adj = graph.undirected_adjacency()
        for v in range(graph.num_vertices):
            reference = np.unique(adj.neighbors(v))
            reference = reference[reference != v]
            np.testing.assert_array_equal(csr.neighbors(v), reference)


class TestExactEquality:
    @pytest.mark.parametrize("index", range(5))
    def test_triangle_counts_per_family(self, index):
        graph = _family_graphs()[index]
        np.testing.assert_array_equal(triangle_counts(graph, use_engine=True),
                                      triangle_counts(graph, use_engine=False))

    @pytest.mark.parametrize("index", range(5))
    def test_properties_per_family(self, index):
        graph = _family_graphs()[index]
        assert (compute_properties(graph, use_engine=True)
                == compute_properties(graph, use_engine=False))

    def test_clustering_coefficients(self, small_rmat_graph):
        np.testing.assert_array_equal(
            local_clustering_coefficients(small_rmat_graph, use_engine=True),
            local_clustering_coefficients(small_rmat_graph, use_engine=False))

    def test_duplicate_edges_self_loops_isolated_vertices(self):
        graph = Graph.from_edges(
            [(0, 1), (0, 1), (1, 0), (1, 2), (2, 0), (3, 3), (0, 0), (4, 5)],
            num_vertices=8)  # vertices 6, 7 isolated
        np.testing.assert_array_equal(triangle_counts(graph, use_engine=True),
                                      triangle_counts(graph, use_engine=False))
        np.testing.assert_array_equal(triangle_counts(graph),
                                      [1, 1, 1, 0, 0, 0, 0, 0])

    def test_empty_and_tiny_graphs(self):
        for graph in (Graph.empty(0), Graph.empty(5),
                      Graph.from_edges([(0, 1)], num_vertices=2),
                      Graph.from_edges([(0, 0)], num_vertices=1)):
            np.testing.assert_array_equal(
                triangle_counts(graph, use_engine=True),
                triangle_counts(graph, use_engine=False))
            assert (compute_properties(graph, use_engine=True)
                    == compute_properties(graph, use_engine=False))

    def test_small_block_size_matches(self, small_rmat_graph):
        np.testing.assert_array_equal(
            triangle_counts_engine(small_rmat_graph, block_pairs=7),
            triangle_counts(small_rmat_graph, use_engine=False))

    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_hypothesis_triangles_and_properties(self, edges):
        graph = Graph.from_edges(edges)
        np.testing.assert_array_equal(triangle_counts(graph, use_engine=True),
                                      triangle_counts(graph, use_engine=False))
        assert (compute_properties(graph, use_engine=True)
                == compute_properties(graph, use_engine=False))


class TestSampledEquality:
    def test_sampled_path_bit_identical(self, small_rmat_graph):
        # num_vertices (256) > sample_size forces the sampled estimator.
        for seed in (0, 1, 17):
            seed_props = compute_properties(small_rmat_graph,
                                            exact_triangles=False,
                                            sample_size=100, seed=seed,
                                            use_engine=False)
            engine_props = compute_properties(small_rmat_graph,
                                              exact_triangles=False,
                                              sample_size=100, seed=seed,
                                              use_engine=True)
            assert seed_props == engine_props

    def test_sampled_stats_engine_matches_loop(self):
        graph = generate_realworld_graph("soc", 300, 2400, seed=5)
        assert (sampled_triangle_stats_engine(graph, 120, 9)
                == _sampled_triangle_stats(graph, 120, 9))

    def test_sampled_block_boundaries(self):
        graph = generate_rmat(300, 2500, seed=2)
        assert (sampled_triangle_stats_engine(graph, 150, 3, block_pairs=5)
                == _sampled_triangle_stats(graph, 150, 3))

    def test_exact_used_at_or_below_sample_size(self, small_rmat_graph):
        exact = compute_properties(small_rmat_graph, exact_triangles=True)
        via_threshold = compute_properties(
            small_rmat_graph, exact_triangles=False,
            sample_size=small_rmat_graph.num_vertices)
        assert exact == via_threshold


class TestBatchAndMemoization:
    def test_batch_matches_singles(self):
        graphs = _family_graphs()
        batch = compute_properties_batch(graphs, exact_triangles=False,
                                         sample_size=150, seed=2)
        for graph, properties in zip(graphs, batch):
            assert properties == compute_properties(
                graph, exact_triangles=False, sample_size=150, seed=2)

    def test_batch_shares_content_duplicates(self):
        graph = generate_rmat(128, 900, seed=4)
        twin = Graph(graph.src.copy(), graph.dst.copy(),
                     num_vertices=graph.num_vertices, name="twin")
        batch = compute_properties_batch([graph, twin, graph])
        assert batch[0] is batch[1] and batch[1] is batch[2]

    def test_batch_empty(self):
        assert compute_properties_batch([]) == []

    def test_store_memoization_roundtrip(self, tmp_path):
        graph = generate_rmat(128, 900, seed=4)
        store = ArtifactStore(str(tmp_path / "cache"))
        first = compute_properties(graph, exact_triangles=False, store=store)
        assert store.misses >= 1
        hits_before = store.hits
        second = compute_properties(graph, exact_triangles=False, store=store)
        assert second == first
        assert store.hits > hits_before
        # A fresh store over the same directory restores from disk.
        fresh = ArtifactStore(str(tmp_path / "cache"))
        assert compute_properties(graph, exact_triangles=False,
                                  store=fresh) == first

    def test_store_key_matches_properties_job(self):
        from repro.runtime.jobs import PropertiesJob

        graph = generate_rmat(64, 300, seed=1)
        fingerprint = graph_fingerprint(graph)
        job = PropertiesJob(fingerprint, False, 0)
        assert properties_artifact_key(fingerprint, False, 0) == job.key

    def test_store_bypassed_for_non_default_sample_size(self, tmp_path):
        graph = generate_rmat(128, 900, seed=4)
        store = ArtifactStore(str(tmp_path / "cache"))
        compute_properties(graph, exact_triangles=False, sample_size=50,
                           store=store)
        assert store.hits == 0 and store.misses == 0

    def test_profiler_batch_uses_cache_dir(self, tmp_path):
        from repro.ease import GraphProfiler

        graphs = [generate_rmat(96, 500, seed=s) for s in range(3)]
        profiler = GraphProfiler(cache_dir=str(tmp_path / "cache"))
        first = profiler.graph_properties_batch(graphs)
        second = profiler.graph_properties_batch(graphs)
        assert first == second
        store = ArtifactStore(str(tmp_path / "cache"))
        key = properties_artifact_key(graph_fingerprint(graphs[0]),
                                      profiler.exact_triangles, profiler.seed)
        assert store.get(key) == first[0]


class TestFeatureMatrixFromGraphs:
    def test_matches_per_graph_properties(self):
        from repro.ease.features import (
            graph_feature_matrix,
            graph_feature_matrix_from_graphs,
        )

        graphs = [generate_rmat(96, 500 + 100 * s, seed=s) for s in range(3)]
        direct = graph_feature_matrix_from_graphs(graphs, "advanced")
        reference = graph_feature_matrix(
            [compute_properties(g, exact_triangles=False) for g in graphs],
            "advanced")
        np.testing.assert_array_equal(direct, reference)


class TestVectorizedScatterEquivalence:
    """The bincount/reduceat replacements must be bit-identical to the
    ufunc ``.at`` scatters they replaced."""

    def _random_graph(self, seed):
        return generate_rmat(128, 1000, seed=seed)

    def test_pagerank_superstep_matches_add_at(self):
        from repro.processing.algorithms.pagerank import PageRank

        graph = self._random_graph(0)
        algorithm = PageRank()
        state = algorithm.initial_state(graph)
        active = algorithm.initial_active(graph)
        for _ in range(3):
            out_degrees = graph.out_degrees()
            shares = state / np.maximum(out_degrees, 1)
            reference = np.zeros(graph.num_vertices)
            np.add.at(reference, graph.dst, shares[graph.src])
            contributions = np.bincount(graph.dst,
                                        weights=shares[graph.src],
                                        minlength=graph.num_vertices)
            np.testing.assert_array_equal(contributions, reference)
            outcome = algorithm.superstep(graph, state, active)
            state, active = outcome.state, outcome.next_active

    def test_scatter_min_matches_minimum_at(self):
        rng = np.random.default_rng(3)
        from repro.processing.algorithms.base import scatter_min

        for _ in range(20):
            target = rng.random(50)
            target[rng.random(50) < 0.2] = np.inf
            indices = rng.integers(0, 50, size=200)
            values = rng.random(200)
            reference = target.copy()
            np.minimum.at(reference, indices, values)
            vectorized = target.copy()
            scatter_min(vectorized, indices, values)
            np.testing.assert_array_equal(vectorized, reference)
        # Empty scatter is a no-op.
        target = rng.random(10)
        before = target.copy()
        scatter_min(target, np.empty(0, dtype=np.int64), np.empty(0))
        np.testing.assert_array_equal(target, before)

    @pytest.mark.parametrize("name", ["sssp", "connected_components",
                                      "kcores", "synthetic_high"])
    def test_algorithm_supersteps_bit_identical_to_reference(self, name):
        """Replay each algorithm and cross-check every superstep against an
        independently computed ufunc-scatter reference state."""
        from repro.processing import create_algorithm

        graph = self._random_graph(1)
        algorithm = create_algorithm(name)
        state = algorithm.initial_state(graph)
        active = algorithm.initial_active(graph)
        for _ in range(4):
            outcome = algorithm.superstep(graph, state, active)
            reference = self._reference_superstep(name, graph, state, active,
                                                  algorithm)
            if reference is not None:
                np.testing.assert_array_equal(outcome.state, reference)
            if not outcome.next_active.any():
                break
            state, active = outcome.state, outcome.next_active

    def _reference_superstep(self, name, graph, state, active, algorithm):
        if name == "sssp":
            reference = state.copy()
            sending = active[graph.src]
            if sending.any():
                np.minimum.at(reference, graph.dst[sending],
                              state[graph.src[sending]] + 1.0)
            return reference
        if name == "connected_components":
            reference = state.copy()
            for senders, receivers in ((graph.src, graph.dst),
                                       (graph.dst, graph.src)):
                sending = active[senders]
                if sending.any():
                    np.minimum.at(reference, receivers[sending],
                                  state[senders[sending]])
            return reference
        if name == "synthetic_high":
            aggregated = np.zeros_like(state)
            np.add.at(aggregated, graph.dst, state[graph.src])
            in_degrees = np.maximum(graph.in_degrees(), 1).astype(np.float64)
            return 0.5 * state + 0.5 * aggregated / in_degrees[:, None]
        if name == "kcores":
            threshold = algorithm._threshold(graph)
            alive = state >= 0
            to_remove = alive & (state < threshold)
            reference = state.copy()
            if to_remove.any():
                reference[to_remove] = -1.0
                for senders, receivers in ((graph.src, graph.dst),
                                           (graph.dst, graph.src)):
                    affected = to_remove[senders]
                    if affected.any():
                        np.subtract.at(reference, receivers[affected], 1.0)
                reference[~alive | to_remove] = -1.0
                reference[alive & ~to_remove] = np.maximum(
                    reference[alive & ~to_remove], 0.0)
            return reference
        return None


class TestVectorizedPartitionCounts:
    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                    min_size=1, max_size=120),
           st.integers(1, 6), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_counts_match_sets(self, edges, k, assignment_seed):
        from repro.partitioning.base import EdgePartition

        graph = Graph.from_edges(edges, num_vertices=26)
        rng = np.random.default_rng(assignment_seed)
        assignment = rng.integers(0, k, size=graph.num_edges)
        partition = EdgePartition(graph, k, assignment)
        assert partition.vertex_counts().tolist() == [
            v.size for v in partition.vertex_sets()]
        assert partition.source_vertex_counts().tolist() == [
            v.size for v in partition.source_vertex_sets()]
        assert partition.destination_vertex_counts().tolist() == [
            v.size for v in partition.destination_vertex_sets()]
        reference = np.zeros(graph.num_vertices, dtype=np.int64)
        for vertices in partition.vertex_sets():
            reference[vertices] += 1
        np.testing.assert_array_equal(partition.vertex_replication_counts(),
                                      reference)


class TestPropertiesCLI:
    def test_properties_command_writes_payloads_and_uses_cache(self, tmp_path,
                                                               capsys):
        import json

        from repro.cli import main
        from repro.generators import generate_rmat
        from repro.graph import GraphProperties, save_npz

        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        graphs = [generate_rmat(96, 500 + 100 * s, seed=s) for s in range(2)]
        for graph in graphs:
            save_npz(graph, str(graphs_dir / f"{graph.name}.npz"))
        args = ["properties", "--graphs", str(graphs_dir),
                "--output", str(tmp_path / "props"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        assert "0 hits" in capsys.readouterr().out
        for graph in graphs:
            path = tmp_path / "props" / f"{graph.name}.properties.json"
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            assert GraphProperties.from_dict(payload) == compute_properties(
                graph, exact_triangles=False)
        # second run restores every graph from the artifact cache
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 hits, 0 misses" in out

    def test_no_engine_flag_matches_engine(self, tmp_path, capsys):
        from repro.cli import main
        from repro.generators import generate_rmat
        from repro.graph import save_npz

        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        graph = generate_rmat(96, 500, seed=0)
        save_npz(graph, str(graphs_dir / "g.npz"))
        assert main(["properties", "--graphs", str(graphs_dir),
                     "--output", str(tmp_path / "engine")]) == 0
        assert main(["properties", "--graphs", str(graphs_dir),
                     "--output", str(tmp_path / "loop"), "--no-engine"]) == 0
        payload = f"{graph.name}.properties.json"
        engine = (tmp_path / "engine" / payload).read_text()
        loop = (tmp_path / "loop" / payload).read_text()
        assert engine == loop
