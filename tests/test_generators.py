"""Tests for the graph generators and the training-grid configurations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import compute_properties, pearson_skewness
from repro.generators import (
    RMATParameters,
    generate_rmat,
    generate_barabasi_albert,
    generate_erdos_renyi,
    generate_realworld_graph,
    generate_test_catalogue,
    generate_large_test_graphs,
    rmat_small_grid,
    rmat_large_grid,
    generate_training_corpus,
    TABLE2_PARAMETER_COMBINATIONS,
    GRAPH_TYPES,
)


class TestRMAT:
    def test_sizes(self):
        graph = generate_rmat(128, 1000, seed=0)
        assert graph.num_edges == 1000
        assert graph.num_vertices == 128
        assert graph.src.max() < 128
        assert graph.dst.max() < 128

    def test_deterministic_for_seed(self):
        a = generate_rmat(64, 500, seed=42)
        b = generate_rmat(64, 500, seed=42)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = generate_rmat(64, 500, seed=1)
        b = generate_rmat(64, 500, seed=2)
        assert not np.array_equal(a.src, b.src)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RMATParameters(0.5, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            RMATParameters(-0.1, 0.5, 0.5, 0.1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_rmat(0, 10)
        with pytest.raises(ValueError):
            generate_rmat(10, -1)

    def test_skewed_parameters_increase_degree_skew(self):
        balanced = generate_rmat(512, 4000, RMATParameters(0.25, 0.25, 0.25, 0.25),
                                 seed=3, noise=0.0)
        skewed = generate_rmat(512, 4000, RMATParameters(0.70, 0.06, 0.19, 0.05),
                               seed=3, noise=0.0)
        assert (pearson_skewness(skewed.out_degrees())
                > pearson_skewness(balanced.out_degrees()))

    def test_non_power_of_two_vertices(self):
        graph = generate_rmat(100, 500, seed=1)
        assert graph.src.max() < 100


class TestBarabasiAlbert:
    def test_edge_count(self):
        graph = generate_barabasi_albert(100, 3, seed=0)
        # m edges for each of the (n - m - 1) attached vertices + m seed edges.
        assert graph.num_edges == 3 + 3 * (100 - 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            generate_barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            generate_barabasi_albert(3, 5)

    def test_degree_skew_is_positive(self):
        graph = generate_barabasi_albert(300, 2, seed=0)
        assert pearson_skewness(graph.degrees()) > 0

    def test_deterministic(self):
        a = generate_barabasi_albert(50, 2, seed=9)
        b = generate_barabasi_albert(50, 2, seed=9)
        np.testing.assert_array_equal(a.src, b.src)


class TestErdosRenyi:
    def test_sizes(self):
        graph = generate_erdos_renyi(50, 200, seed=0)
        assert graph.num_edges == 200
        assert graph.num_vertices == 50

    def test_low_clustering(self):
        graph = generate_erdos_renyi(400, 1200, seed=0)
        props = compute_properties(graph.deduplicated().without_self_loops())
        assert props.mean_local_clustering < 0.05


class TestRealWorldFamilies:
    @pytest.mark.parametrize("graph_type", GRAPH_TYPES)
    def test_each_family_generates(self, graph_type):
        graph = generate_realworld_graph(graph_type, 200, 1200, seed=1)
        assert graph.num_vertices == 200
        assert graph.num_edges > 0
        assert graph.graph_type == graph_type

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            generate_realworld_graph("nonsense", 100, 500)

    def test_collaboration_has_higher_clustering_than_interaction(self):
        collab = generate_realworld_graph("collaboration", 300, 2500, seed=2)
        inter = generate_realworld_graph("interaction", 300, 2500, seed=2)
        collab_props = compute_properties(collab.deduplicated().without_self_loops())
        inter_props = compute_properties(inter.deduplicated().without_self_loops())
        assert collab_props.mean_local_clustering > inter_props.mean_local_clustering

    def test_wiki_is_more_skewed_than_product(self):
        wiki = generate_realworld_graph("wiki", 400, 4000, seed=3)
        product = generate_realworld_graph("product_network", 400, 4000, seed=3)
        assert (pearson_skewness(wiki.in_degrees())
                > pearson_skewness(product.in_degrees()))

    def test_catalogue_composition(self):
        catalogue = generate_test_catalogue(scale=0.05, base_vertices=100,
                                            base_edges=500)
        types = {g.graph_type for g in catalogue}
        assert types == set(GRAPH_TYPES)

    def test_large_test_graphs(self):
        graphs = generate_large_test_graphs(scale=0.1)
        assert len(graphs) == 7
        assert all(g.num_edges >= 100 for g in graphs)


class TestTrainingGrids:
    def test_table2_has_nine_combinations(self):
        assert len(TABLE2_PARAMETER_COMBINATIONS) == 9
        for params in TABLE2_PARAMETER_COMBINATIONS:
            assert params.d == pytest.approx(0.05)

    def test_small_grid_cell_count_matches_table(self):
        # Table I(a) has 33 (|E|, |V|) combinations x 9 parameter combinations.
        specs = rmat_small_grid()
        assert len(specs) == 33 * 9 == 297

    def test_large_grid_cell_count_matches_table(self):
        # Table I(b) has 20 (|E|, |V|) combinations x 9 parameter combinations.
        specs = rmat_large_grid()
        assert len(specs) == 20 * 9 == 180

    def test_vertices_never_exceed_edges(self):
        for spec in rmat_small_grid():
            assert spec.num_vertices <= spec.num_edges

    def test_corpus_generation_is_deterministic(self):
        specs = rmat_small_grid()[:3]
        first = [g.edge_array() for g in generate_training_corpus(specs, seed=5)]
        second = [g.edge_array() for g in generate_training_corpus(specs, seed=5)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_corpus_truncation(self):
        specs = rmat_small_grid()
        graphs = list(generate_training_corpus(specs, max_graphs=4))
        assert len(graphs) == 4


class TestGeneratorProperties:
    @given(num_vertices=st.integers(8, 200), num_edges=st.integers(1, 800),
           seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_rmat_vertex_ids_in_range(self, num_vertices, num_edges, seed):
        graph = generate_rmat(num_vertices, num_edges, seed=seed)
        assert graph.num_edges == num_edges
        assert graph.src.max() < num_vertices
        assert graph.dst.max() < num_vertices
