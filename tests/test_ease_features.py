"""Tests for EASE feature engineering (Table III)."""

import numpy as np
import pytest

from repro.graph import compute_properties
from repro.ease import (
    FEATURE_SETS,
    QualityFeatureBuilder,
    PartitioningTimeFeatureBuilder,
    ProcessingTimeFeatureBuilder,
    graph_feature_names,
    graph_feature_vector,
)


@pytest.fixture(scope="module")
def properties(request):
    from repro.generators import generate_rmat

    return compute_properties(generate_rmat(128, 800, seed=1))


class TestFeatureSets:
    def test_three_feature_sets(self):
        assert set(FEATURE_SETS) == {"simple", "basic", "advanced"}

    def test_nesting(self):
        assert set(FEATURE_SETS["simple"]) < set(FEATURE_SETS["basic"])
        assert set(FEATURE_SETS["basic"]) < set(FEATURE_SETS["advanced"])

    def test_unknown_set_raises(self):
        with pytest.raises(ValueError):
            graph_feature_names("deluxe")

    def test_vector_matches_names(self, properties):
        vector = graph_feature_vector(properties, "advanced")
        names = graph_feature_names("advanced")
        assert vector.shape == (len(names),)
        as_dict = properties.as_dict()
        for value, name in zip(vector, names):
            assert value == pytest.approx(as_dict[name])


class TestQualityFeatureBuilder:
    def test_feature_matrix_shape(self, properties):
        builder = QualityFeatureBuilder(feature_set="basic").fit(["ne", "dbh"])
        matrix = builder.build([properties, properties], ["ne", "dbh"], [4, 8])
        # 6 basic properties + k + 2 one-hot columns.
        assert matrix.shape == (2, 6 + 1 + 2)

    def test_feature_names_align_with_columns(self, properties):
        builder = QualityFeatureBuilder(feature_set="basic").fit(["ne", "dbh"])
        names = builder.feature_names()
        matrix = builder.build([properties], ["ne"], [16])
        assert len(names) == matrix.shape[1]
        assert names[6] == "num_partitions"
        assert matrix[0, 6] == 16

    def test_one_hot_is_exclusive(self, properties):
        builder = QualityFeatureBuilder().fit(["a", "b", "c"])
        matrix = builder.build([properties], ["b"], [4])
        one_hot = matrix[0, -3:]
        assert one_hot.sum() == 1.0

    def test_unknown_partitioner_maps_to_zero_vector(self, properties):
        builder = QualityFeatureBuilder().fit(["a", "b"])
        matrix = builder.build([properties], ["zzz"], [4])
        assert matrix[0, -2:].sum() == 0.0


class TestPartitioningTimeFeatureBuilder:
    def test_shape_and_names(self, properties):
        builder = PartitioningTimeFeatureBuilder(feature_set="simple").fit(["ne"])
        matrix = builder.build([properties], ["ne"])
        assert matrix.shape == (1, 2 + 1)
        assert len(builder.feature_names()) == 3


class TestProcessingTimeFeatureBuilder:
    def test_includes_quality_metrics(self, properties):
        builder = ProcessingTimeFeatureBuilder()
        metrics = {"replication_factor": 2.0, "edge_balance": 1.1,
                   "vertex_balance": 1.2, "source_balance": 1.3,
                   "destination_balance": 1.4}
        matrix = builder.build([properties], [4], [metrics])
        # 2 simple properties + k + 5 quality metrics.
        assert matrix.shape == (1, 8)
        names = builder.feature_names()
        assert "replication_factor" in names
        assert matrix[0, names.index("replication_factor")] == 2.0
        assert matrix[0, names.index("destination_balance")] == 1.4
