"""Edge-case and robustness tests for the partitioners and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.generators import generate_rmat, generate_erdos_renyi
from repro.partitioning import (
    ALL_PARTITIONER_NAMES,
    HDRFPartitioner,
    HybridEdgePartitioner,
    NeighborhoodExpansionPartitioner,
    TwoPhaseStreamingPartitioner,
    compute_quality_metrics,
    create_partitioner,
    edge_balance,
    replication_factor,
)


def _self_loop_graph():
    return Graph.from_edges([(0, 0), (1, 1), (0, 1), (1, 2)], num_vertices=3)


def _multi_edge_graph():
    return Graph.from_edges([(0, 1)] * 10 + [(2, 3)] * 10)


class TestDegenerateGraphs:
    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_self_loops_are_handled(self, name):
        graph = _self_loop_graph()
        partition = create_partitioner(name)(graph, 2)
        assert partition.assignment.shape[0] == graph.num_edges
        assert replication_factor(partition) >= 1.0

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_duplicate_edges_are_handled(self, name):
        graph = _multi_edge_graph()
        partition = create_partitioner(name)(graph, 4)
        assert partition.assignment.shape[0] == graph.num_edges

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_more_partitions_than_edges(self, name):
        graph = Graph.from_edges([(0, 1), (1, 2)])
        partition = create_partitioner(name)(graph, 8)
        assert partition.assignment.max() < 8

    @pytest.mark.parametrize("name", ALL_PARTITIONER_NAMES)
    def test_isolated_vertices_do_not_break_metrics(self, name):
        graph = Graph.from_edges([(0, 1)], num_vertices=100)
        partition = create_partitioner(name)(graph, 2)
        metrics = compute_quality_metrics(partition)
        assert metrics.replication_factor == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ("hdrf", "2ps", "ne", "hep10"))
    def test_star_graph(self, name):
        graph = Graph.from_edges([(0, i) for i in range(1, 60)])
        partition = create_partitioner(name)(graph, 4)
        metrics = compute_quality_metrics(partition)
        # Only the hub can be replicated, so RF is bounded by ~1 + k/|V|.
        assert metrics.replication_factor < 1.2


class TestPartitionerParameters:
    def test_hdrf_balance_weight_controls_balance(self):
        graph = generate_rmat(256, 3000, seed=5)
        greedy = HDRFPartitioner(balance_weight=0.01)(graph, 8)
        balanced = HDRFPartitioner(balance_weight=5.0)(graph, 8)
        assert edge_balance(balanced) <= edge_balance(greedy) + 1e-9

    def test_2ps_balance_slack_is_respected(self):
        graph = generate_rmat(256, 3000, seed=6)
        for slack in (1.02, 1.10, 1.30):
            partition = TwoPhaseStreamingPartitioner(balance_slack=slack)(graph, 4)
            assert edge_balance(partition) <= slack + 0.05

    def test_ne_balance_slack_controls_capacity(self):
        graph = generate_rmat(256, 3000, seed=7)
        tight = NeighborhoodExpansionPartitioner(balance_slack=1.0)(graph, 4)
        counts = tight.edge_counts()
        # The first k-1 partitions stop growing at their capacity; the last
        # partition absorbs whatever remains (as in the reference algorithm).
        capacity = 1.0 * graph.num_edges / 4
        assert (counts[:-1] <= capacity + 1).all()

    def test_hep_tau_extremes_match_neighbours(self):
        graph = generate_rmat(512, 5000, seed=8)
        # With a huge tau no vertex is "high degree": HEP behaves like NE.
        all_in_memory = HybridEdgePartitioner(tau=1e9)(graph, 4)
        # With a tiny tau almost everything is streamed.
        mostly_streamed = HybridEdgePartitioner(tau=1e-6)(graph, 4)
        rf_memory = replication_factor(all_in_memory)
        rf_streamed = replication_factor(mostly_streamed)
        assert rf_memory <= rf_streamed + 0.2

    def test_hep_name_encodes_tau(self):
        assert HybridEdgePartitioner(tau=1.0).name == "hep1"
        assert HybridEdgePartitioner(tau=100.0).name == "hep100"
        assert HybridEdgePartitioner(tau=2.5).name == "hep2.5"


class TestQualityRelationshipsAcrossGraphFamilies:
    """Cross-family sanity checks for the relationships EASE learns."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_in_memory_beats_stateless_on_rmat(self, seed):
        graph = generate_rmat(512, 6000, seed=seed)
        rf_ne = replication_factor(create_partitioner("ne")(graph, 8))
        rf_crvc = replication_factor(create_partitioner("crvc")(graph, 8))
        assert rf_ne < rf_crvc

    def test_replication_factor_grows_with_partition_count(self):
        graph = generate_rmat(512, 6000, seed=4)
        rf_values = [replication_factor(create_partitioner("crvc")(graph, k))
                     for k in (2, 4, 8, 16)]
        assert rf_values == sorted(rf_values)

    def test_uniform_random_graph_has_higher_rf_than_clustered(self):
        clustered = generate_rmat(512, 6000, seed=9)
        uniform = generate_erdos_renyi(512, 6000, seed=9)
        rf_clustered = replication_factor(create_partitioner("hdrf")(clustered, 8))
        rf_uniform = replication_factor(create_partitioner("hdrf")(uniform, 8))
        assert rf_clustered < rf_uniform + 0.5


class TestPropertyBasedEdgeCases:
    @given(num_edges=st.integers(1, 40), k=st.integers(1, 10),
           seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_hash_partitioners_on_arbitrary_small_graphs(self, num_edges, k,
                                                         seed):
        graph = generate_rmat(16, num_edges, seed=seed)
        for name in ("1dd", "1ds", "2d", "crvc", "dbh"):
            partition = create_partitioner(name)(graph, k)
            metrics = compute_quality_metrics(partition)
            assert 1.0 <= metrics.replication_factor <= min(
                k, graph.num_vertices) + 1e-9
