"""Tests of the task-DAG scheduler, executor backends and cache lifecycle.

The contracts under test:

* the DAG decomposition of a plan has the shape of the design
  (``PartitionTask`` feeding quality / timing / per-workload processing);
* the merged dataset equals the sequential loop record-for-record on every
  backend (inline, process pool, worker queue), at both granularities, for
  arbitrary small grids (property-based) — including out-of-order acks and
  crash/requeue in the worker queue;
* wall-clock timing records carry mean/std/repeats and resume from
  task-level checkpoints;
* the artifact store enforces its size bound in LRU order and ``cache gc``
  reports reclaimed bytes.
"""

import os
import pickle
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.generators import generate_rmat
from repro.ease import GraphProfiler
from repro.ease.persistence import canonical_sorted
from repro.runtime import (
    ArtifactStore,
    ProfileExecutor,
    WorkerPoolBackend,
    build_dataset,
    build_task_graph,
)
from repro.runtime.backends import _claim_next, _execute_claim
from repro.runtime.executor import load_checkpoint, save_checkpoint

PARTITIONERS = ("2d", "dbh")
PARTITION_COUNTS = (2,)
PROCESSING_K = 2
ALGORITHMS = ("pagerank", "connected_components")
SEED = 0


def make_profiler(**kwargs):
    return GraphProfiler(partitioner_names=PARTITIONERS,
                         partition_counts=PARTITION_COUNTS,
                         processing_partition_count=PROCESSING_K,
                         algorithms=ALGORITHMS, seed=SEED, **kwargs)


@pytest.fixture(scope="module")
def graphs():
    return [generate_rmat(96, 500, seed=s, graph_type="rmat")
            for s in range(2)]


@pytest.fixture(scope="module")
def reference(graphs):
    return make_profiler().profile(graphs, graphs)


def assert_datasets_identical(actual, expected):
    assert len(actual.quality) == len(expected.quality)
    assert len(actual.partitioning_time) == len(expected.partitioning_time)
    assert len(actual.processing) == len(expected.processing)
    for got, want in zip(actual.quality, expected.quality):
        assert got == want
    for got, want in zip(actual.partitioning_time,
                         expected.partitioning_time):
        assert got == want
    for got, want in zip(actual.processing, expected.processing):
        assert got == want


# --------------------------------------------------------------------------- #
# DAG shape
# --------------------------------------------------------------------------- #
class TestTaskGraphShape:
    def test_unit_decomposes_into_design_dag(self, graphs):
        plan = make_profiler().build_plan(graphs, graphs)
        task_graph = build_task_graph(plan)
        units = plan.work_units()
        by_kind = {}
        for task_id in task_graph.tasks:
            by_kind.setdefault(task_id[0], []).append(task_id)
        assert len(by_kind["properties"]) == len(graphs)
        assert len(by_kind["partition"]) == len(units)
        assert len(by_kind["quality"]) == len(units)
        assert len(by_kind["partitioning_time_task"]) == len(units)
        processing_units = [unit for unit in units if unit.algorithms]
        assert len(by_kind["processing"]) == (len(processing_units)
                                              * len(ALGORITHMS))

    def test_dependencies_point_at_the_partition(self, graphs):
        plan = make_profiler().build_plan(graphs, graphs)
        task_graph = build_task_graph(plan)
        for task_id, task in task_graph.tasks.items():
            kind = task_id[0]
            if kind in ("properties", "partition"):
                assert task.dependencies == ()
            else:
                (dep,) = task.dependencies
                assert dep[0] == "partition"
                assert dep[1:4] == task_id[1:4]
            if kind in ("quality", "processing"):
                assert task.input_dependencies == task.dependencies
            else:
                # Timing is sequenced after the partition but never ships
                # the assignment across a process boundary.
                assert tuple(task.input_dependencies) == ()


# --------------------------------------------------------------------------- #
# Determinism across backends (property-based)
# --------------------------------------------------------------------------- #
def sequential_reference(graphs, partitioners, counts, processing_k,
                         algorithms):
    profiler = GraphProfiler(partitioner_names=partitioners,
                             partition_counts=counts,
                             processing_partition_count=processing_k,
                             algorithms=algorithms, seed=SEED,
                             backend="inline")
    return profiler.profile(graphs, graphs)


class TestBackendDeterminism:
    @given(num_graphs=st.integers(1, 3),
           partitioners=st.sampled_from([("2d",), ("2d", "dbh"),
                                         ("dbh", "hdrf")]),
           counts=st.sampled_from([(2,), (2, 4)]),
           algorithms=st.sampled_from([(), ("pagerank",),
                                       ("pagerank", "sssp")]),
           granularity=st.sampled_from(["task", "unit"]))
    @settings(max_examples=12, deadline=None)
    def test_task_dag_merge_equals_sequential_loop(
            self, num_graphs, partitioners, counts, algorithms, granularity):
        graphs = [generate_rmat(64, 300, seed=s, graph_type="rmat")
                  for s in range(num_graphs)]
        expected = sequential_reference(graphs, partitioners, counts,
                                        PROCESSING_K, algorithms)
        profiler = GraphProfiler(partitioner_names=partitioners,
                                 partition_counts=counts,
                                 processing_partition_count=PROCESSING_K,
                                 algorithms=algorithms, seed=SEED)
        plan = profiler.build_plan(graphs, graphs)
        executor = ProfileExecutor(granularity=granularity)
        results, _ = executor.run(plan)
        assert_datasets_identical(build_dataset(plan, results), expected)

    @pytest.mark.parametrize("backend_kwargs", [
        {"backend": "inline"},
        {"backend": "process", "jobs": 2},
        {"backend": "worker", "jobs": 2},
    ])
    def test_every_backend_matches_the_reference(self, graphs, reference,
                                                 backend_kwargs):
        profiler = make_profiler(**backend_kwargs)
        dataset = profiler.profile(graphs, graphs)
        assert_datasets_identical(dataset, reference)
        assert_datasets_identical(canonical_sorted(dataset),
                                  canonical_sorted(reference))

    def test_unit_granularity_matches_on_a_pool(self, graphs, reference):
        plan = make_profiler().build_plan(graphs, graphs)
        executor = ProfileExecutor(jobs=2, granularity="unit")
        results, stats = executor.run(plan)
        assert_datasets_identical(build_dataset(plan, results), reference)
        assert stats.partitions_computed == stats.unique_partition_jobs


# --------------------------------------------------------------------------- #
# Worker queue: out-of-order acks, crash requeue, worker CLI
# --------------------------------------------------------------------------- #
class TestWorkerPoolBackend:
    def test_out_of_order_acks_merge_identically(self, graphs, reference,
                                                 tmp_path):
        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0,
                                    poll_interval=0.01)
        executor = ProfileExecutor(backend=backend)

        # Serve the queue in *reverse* claim order from a second thread: the
        # scheduler keeps dispatching, acks arrive maximally out of order,
        # and the merged dataset must not change.
        import threading

        stop = threading.Event()

        def adversarial_worker():
            store = ArtifactStore(None)
            local_graphs = {}
            while not stop.is_set():
                tasks_dir = os.path.join(queue_dir, "tasks")
                names = sorted(os.listdir(tasks_dir)) \
                    if os.path.isdir(tasks_dir) else []
                claimed = None
                for name in reversed(names):
                    if not name.endswith(".task"):
                        continue
                    source = os.path.join(tasks_dir, name)
                    target = os.path.join(queue_dir, "claimed", name)
                    try:
                        os.rename(source, target)
                    except OSError:
                        continue
                    claimed = target
                    break
                if claimed is None:
                    time.sleep(0.005)
                    continue
                _execute_claim(claimed, queue_dir, local_graphs, store)

        thread = threading.Thread(target=adversarial_worker, daemon=True)
        thread.start()
        try:
            plan = make_profiler().build_plan(graphs, graphs)
            results, _ = executor.run(plan)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert_datasets_identical(build_dataset(plan, results), reference)

    def test_reused_queue_dir_discards_leftovers(self, tmp_path):
        # An interrupted earlier run leaves spooled tasks, claims and
        # uncollected acks behind; a fresh start must not execute or
        # collect any of them.
        queue_dir = str(tmp_path / "queue")
        stale = WorkerPoolBackend(queue_dir, spawn_workers=0)
        stale.start({}, None)
        for subdir, name, payload in (
                ("tasks", "old.task", {"task_id": ("old",)}),
                ("claimed", "held.task", {"task_id": ("held",)}),
                ("results", "done.result",
                 {"task_id": ("foreign",), "ok": True, "payload": 1})):
            with open(os.path.join(queue_dir, subdir, name), "wb") as handle:
                pickle.dump(payload, handle)

        backend = WorkerPoolBackend(queue_dir, spawn_workers=0)
        backend.start({}, None)
        for subdir in ("tasks", "claimed", "results"):
            assert os.listdir(os.path.join(queue_dir, subdir)) == []

    def test_foreign_and_duplicate_acks_are_ignored(self, tmp_path):
        from repro.runtime.backends import _atomic_write

        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0,
                                    poll_interval=0.001)
        backend.start({}, None)
        # One real outstanding task, plus a foreign ack racing in from a
        # previous run's worker (e.g. acked after start()'s cleanup).
        backend._outstanding.add(("real",))
        _atomic_write(os.path.join(queue_dir, "results", "a.result"),
                      {"task_id": ("foreign",), "ok": True, "payload": 0})
        _atomic_write(os.path.join(queue_dir, "results", "b.result"),
                      {"task_id": ("real",), "ok": True, "payload": 42})
        task_id, payload = backend.next_completed()
        assert task_id == ("real",) and payload == 42
        # Both files were consumed; a duplicate ack of the completed task
        # would likewise be dropped on the next poll.
        assert os.listdir(os.path.join(queue_dir, "results")) == []

    def test_crashed_claim_is_requeued(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0)
        backend.start({}, None)
        payload = {"task_id": ("t",), "anything": 1}
        path = os.path.join(queue_dir, "tasks", "abc.task")
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        claimed = _claim_next(queue_dir)
        assert claimed is not None
        assert os.listdir(os.path.join(queue_dir, "tasks")) == []
        # The worker "crashed" here: nothing acked, claim file left behind.
        assert backend.requeue_stale(max_age_seconds=0.0) == 1
        assert os.listdir(os.path.join(queue_dir, "tasks")) == ["abc.task"]
        assert os.listdir(os.path.join(queue_dir, "claimed")) == []

    def test_worker_cli_drains_a_queue(self, graphs, tmp_path, capsys):
        # Spool every independent task by hand, then let the CLI worker
        # drain the directory and ack results.
        from repro.runtime.backends import TaskEnvelope, _task_filename
        from repro.runtime.backends import _atomic_write, _graph_to_arrays
        from repro.runtime.tasks import PartitionTask
        from repro.runtime.jobs import graph_fingerprint

        queue_dir = str(tmp_path / "queue")
        backend = WorkerPoolBackend(queue_dir, spawn_workers=0)
        fingerprint = graph_fingerprint(graphs[0])
        backend.start({fingerprint: graphs[0]}, None)
        for name in PARTITIONERS:
            task = PartitionTask(fingerprint, name, 2, SEED)
            backend.submit(TaskEnvelope(task.task_id, task, fingerprint))

        assert main(["worker", "--queue-dir", queue_dir, "--drain",
                     "--poll-interval", "0.01"]) == 0
        assert f"worker exiting after {len(PARTITIONERS)} tasks" \
            in capsys.readouterr().out
        collected = {backend.next_completed()[0][2]
                     for _ in range(len(PARTITIONERS))}
        assert collected == set(PARTITIONERS)


# --------------------------------------------------------------------------- #
# Crash/resume mid-DAG
# --------------------------------------------------------------------------- #
class TestMidDagResume:
    def test_wall_clock_timing_resumes_from_checkpoint(self, graphs,
                                                       tmp_path):
        checkpoint = str(tmp_path / "wall.checkpoint")
        profiler = make_profiler(partitioning_time_mode="wall_clock",
                                 time_repeats=2)
        first = profiler.profile(graphs, [], checkpoint_path=checkpoint)

        # Drop the quality tasks only: resuming must re-measure nothing
        # (wall-clock samples live in the checkpoint, not the cache) and the
        # timing records must be bit-identical to the first run.
        payloads = load_checkpoint(checkpoint)
        timing_payloads = [key for key in payloads
                           if key[0] == "partitioning_time_task"]
        dropped = [key for key in payloads if key[0] == "quality"]
        for key in dropped:
            del payloads[key]
        save_checkpoint(checkpoint, payloads)

        resumed_profiler = make_profiler(partitioning_time_mode="wall_clock",
                                         time_repeats=2)
        resumed = resumed_profiler.profile(graphs, [],
                                           checkpoint_path=checkpoint)
        stats = resumed_profiler.last_run_stats
        assert stats.checkpoint_tasks >= len(timing_payloads)
        for got, want in zip(resumed.partitioning_time,
                             first.partitioning_time):
            assert got == want
        for record in resumed.partitioning_time:
            assert record.repeats == 2
            assert record.seconds > 0
            assert record.seconds_std >= 0

    def test_interrupted_run_resumes_mid_dag(self, graphs, reference,
                                             tmp_path):
        # Simulate a mid-DAG crash: keep only a prefix of the per-task
        # checkpoint (checkpoint_every=1 writes one per completion), then
        # resume the whole run from it.
        checkpoint = str(tmp_path / "crash.checkpoint")
        profiler = make_profiler()
        plan = profiler.build_plan(graphs, graphs)
        executor = ProfileExecutor(checkpoint_path=checkpoint,
                                   checkpoint_every=1)
        results, _ = executor.run(plan)
        full = load_checkpoint(checkpoint)
        prefix = dict(sorted(full.items(), key=repr)[:len(full) // 3])
        save_checkpoint(checkpoint, prefix)

        resumed_profiler = make_profiler()
        resumed = resumed_profiler.profile(graphs, graphs,
                                           checkpoint_path=checkpoint)
        assert_datasets_identical(resumed, reference)
        stats = resumed_profiler.last_run_stats
        assert stats.checkpoint_tasks == len(prefix)
        assert stats.executed_tasks > 0


# --------------------------------------------------------------------------- #
# Artifact-cache lifecycle
# --------------------------------------------------------------------------- #
class TestCacheLifecycle:
    def _fill(self, store, count, size=1000):
        for index in range(count):
            store.put(("quality", f"artifact-{index:03d}"),
                      np.zeros(size, dtype=np.int8))
            time.sleep(0.002)  # distinct mtimes for a stable LRU order

    def test_max_bytes_evicts_least_recently_used(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_bytes=5000)
        self._fill(store, 8)
        usage = store.disk_usage()
        assert usage["bytes"] <= 5000
        assert store.evicted_files > 0
        # The newest artifacts survive.
        assert store.path_for(("quality", "artifact-007")) is not None
        assert os.path.exists(store.path_for(("quality", "artifact-007")))
        assert not os.path.exists(store.path_for(("quality", "artifact-000")))

    def test_get_refreshes_recency(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        self._fill(store, 4)
        fresh = ArtifactStore(str(tmp_path))
        assert fresh.get(("quality", "artifact-000")) is not None  # touch
        time.sleep(0.002)
        report = fresh.gc(max_bytes=2500)
        assert report["removed_files"] > 0
        # The touched artifact outlived younger-by-write ones.
        assert os.path.exists(store.path_for(("quality", "artifact-000")))
        assert not os.path.exists(store.path_for(("quality", "artifact-001")))

    def test_gc_reports_reclaimed_bytes(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        self._fill(store, 5)
        before = store.disk_usage()
        report = store.gc(max_bytes=0)
        assert report["reclaimed_bytes"] == before["bytes"]
        assert report["removed_files"] == before["files"]
        assert report["remaining_bytes"] == 0
        assert store.disk_usage() == {"files": 0, "bytes": 0}

    def test_cache_gc_cli(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        store = ArtifactStore(cache_dir)
        self._fill(store, 3, size=500)
        assert main(["cache", "gc", "--cache-dir", cache_dir,
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out and "3 artifacts" in out
        assert store.disk_usage()["files"] == 0

    def test_cache_gc_cli_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--cache-dir",
                  str(tmp_path / "does-not-exist"), "--max-bytes", "0"])

    def test_cache_gc_cli_requires_max_bytes(self, tmp_path):
        # Omitting --max-bytes must not silently clear the cache.
        with pytest.raises(SystemExit):
            main(["cache", "gc", "--cache-dir", str(tmp_path)])

    def test_gc_spares_fresh_tmp_files_of_live_writers(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        self._fill(store, 1)
        fresh_tmp = tmp_path / "quality" / "inflight.tmp"
        fresh_tmp.write_bytes(b"mid-write")
        old_tmp = tmp_path / "quality" / "crashed.tmp"
        old_tmp.write_bytes(b"leftover")
        os.utime(old_tmp, (time.time() - 3600, time.time() - 3600))
        store.gc(max_bytes=10 ** 9)  # bound not exceeded: only tmp sweep
        assert fresh_tmp.exists()  # a live writer may still rename it
        assert not old_tmp.exists()

    def test_evicted_cache_recomputes_correctly(self, graphs, reference,
                                                tmp_path):
        # Eviction must never change results — the cache is an optimisation,
        # not a source of truth: gc a warm cache down to almost nothing and
        # re-profile through it.
        cache_dir = str(tmp_path / "cache")
        make_profiler(cache_dir=cache_dir).profile(graphs, graphs)
        report = ArtifactStore(cache_dir).gc(max_bytes=1024)
        assert report["removed_files"] > 0
        again_profiler = make_profiler(cache_dir=cache_dir)
        again = again_profiler.profile(graphs, graphs)
        assert_datasets_identical(again, reference)
        assert again_profiler.last_run_stats.executed_tasks > 0


# --------------------------------------------------------------------------- #
# Wall-clock repeats on the record
# --------------------------------------------------------------------------- #
class TestWallClockRepeats:
    def test_repeats_recorded_with_mean_and_std(self, graphs):
        profiler = make_profiler(partitioning_time_mode="wall_clock",
                                 time_repeats=3)
        dataset = profiler.profile(graphs[:1], [])
        assert dataset.partitioning_time
        for record in dataset.partitioning_time:
            assert record.repeats == 3
            assert record.seconds > 0
            assert record.seconds_std >= 0

    def test_model_mode_is_single_exact_sample(self, reference):
        for record in reference.partitioning_time:
            assert record.repeats == 1
            assert record.seconds_std == 0.0

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            make_profiler(time_repeats=0)
        with pytest.raises(ValueError):
            ProfileExecutor(time_repeats=0)


# --------------------------------------------------------------------------- #
# CLI backend selection
# --------------------------------------------------------------------------- #
class TestCLIBackends:
    def test_profile_backend_flag(self, graphs, tmp_path, capsys):
        from repro.graph import save_npz

        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        save_npz(graphs[0], str(graphs_dir / "g0.npz"))
        output = str(tmp_path / "profile.pkl")
        assert main(["profile", "--graphs", str(graphs_dir),
                     "--output", output,
                     "--partitioners", "2d",
                     "--algorithms", "pagerank",
                     "--partition-counts", "2",
                     "--processing-partitions", "2",
                     "--jobs", "2", "--backend", "worker",
                     "--queue-dir", str(tmp_path / "queue")]) == 0
        out = capsys.readouterr().out
        assert "backend=worker" in out

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ProfileExecutor(backend="teleport")
        with pytest.raises(SystemExit):
            main(["profile", "--graphs", "x", "--output", "y",
                  "--backend", "teleport"])
