"""Tests for the processing engine, cluster model and cost model."""

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.partitioning import (
    EdgePartition,
    compute_quality_metrics,
    create_partitioner,
)
from repro.processing import (
    ClusterSpec,
    ConnectedComponents,
    LabelPropagation,
    PageRank,
    PartitionedGraphCostModel,
    ProcessingEngine,
    SyntheticHigh,
)


@pytest.fixture(scope="module")
def medium_graph():
    return generate_rmat(1024, 8000, seed=21)


class TestClusterSpec:
    def test_defaults_are_valid(self):
        spec = ClusterSpec()
        assert spec.num_machines >= 1

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_machines=0)
        with pytest.raises(ValueError):
            ClusterSpec(network_bandwidth=0)
        with pytest.raises(ValueError):
            ClusterSpec(network_latency=-1)
        with pytest.raises(ValueError):
            ClusterSpec(edge_compute_cost=-1)

    def test_partition_to_machine_mapping(self):
        spec = ClusterSpec(num_machines=4)
        assert spec.machine_of_partition(0) == 0
        assert spec.machine_of_partition(5) == 1


class TestCostModel:
    def test_no_activity_costs_only_latency(self, medium_graph):
        partition = create_partitioner("crvc")(medium_graph, 4)
        cluster = ClusterSpec(num_machines=4)
        model = PartitionedGraphCostModel(partition, cluster)
        nothing = np.zeros(medium_graph.num_vertices, dtype=bool)
        compute, communication, active_edges = model.superstep_cost(
            nothing, nothing, edge_work=1.0, vertex_work=1.0, message_size=1.0)
        assert compute == 0.0
        assert communication == pytest.approx(cluster.network_latency)
        assert active_edges == 0

    def test_more_replication_means_more_communication(self, medium_graph):
        cluster = ClusterSpec(num_machines=4)
        everything = np.ones(medium_graph.num_vertices, dtype=bool)
        costs = {}
        for name in ("ne", "crvc"):
            partition = create_partitioner(name)(medium_graph, 4)
            model = PartitionedGraphCostModel(partition, cluster)
            _, communication, _ = model.superstep_cost(
                everything, everything, 1.0, 1.0, 1.0)
            costs[name] = communication
        assert costs["ne"] < costs["crvc"]

    def test_message_size_scales_communication(self, medium_graph):
        partition = create_partitioner("crvc")(medium_graph, 4)
        cluster = ClusterSpec(num_machines=4)
        model = PartitionedGraphCostModel(partition, cluster)
        everything = np.ones(medium_graph.num_vertices, dtype=bool)
        _, small, _ = model.superstep_cost(everything, everything, 1.0, 1.0, 1.0)
        _, large, _ = model.superstep_cost(everything, everything, 1.0, 1.0, 10.0)
        assert large > small

    def test_replica_counts_match_metrics(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 4)
        model = PartitionedGraphCostModel(partition, ClusterSpec(num_machines=4))
        metrics = compute_quality_metrics(partition)
        covered = model.replica_counts[model.replica_counts > 0]
        assert covered.mean() == pytest.approx(metrics.replication_factor)

    def test_compute_uses_max_machine(self, medium_graph):
        # An intentionally imbalanced partitioning: all edges on partition 0.
        assignment = np.zeros(medium_graph.num_edges, dtype=np.int64)
        partition = EdgePartition(medium_graph, 4, assignment, "manual")
        model = PartitionedGraphCostModel(partition, ClusterSpec(num_machines=4))
        everything = np.ones(medium_graph.num_vertices, dtype=bool)
        compute, _, _ = model.superstep_cost(everything, everything, 1.0, 0.0, 1.0)
        cluster = ClusterSpec(num_machines=4)
        expected = cluster.edge_compute_cost * medium_graph.num_edges
        assert compute == pytest.approx(expected)


class TestEngine:
    def test_result_record_fields(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 4)
        result = ProcessingEngine().run(partition, PageRank(num_iterations=3))
        record = result.as_record()
        assert record["algorithm"] == "pagerank"
        assert record["partitioner"] == "dbh"
        assert record["num_supersteps"] == 3
        assert record["total_seconds"] > 0

    def test_average_iteration_time(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 4)
        result = ProcessingEngine().run(partition, PageRank(num_iterations=4))
        assert result.average_iteration_seconds == pytest.approx(
            result.total_seconds / 4)

    def test_total_is_compute_plus_communication(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 4)
        result = ProcessingEngine().run(partition, PageRank(num_iterations=3))
        assert result.total_seconds == pytest.approx(
            result.compute_seconds() + result.communication_seconds())

    def test_convergence_algorithm_stops_early(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 4)
        result = ProcessingEngine().run(partition, ConnectedComponents())
        assert result.converged
        assert result.num_supersteps < ConnectedComponents.default_iterations

    def test_max_supersteps_override(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 4)
        result = ProcessingEngine().run(partition, ConnectedComponents(),
                                        max_supersteps=1)
        assert result.num_supersteps == 1

    def test_default_cluster_matches_partition_count(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 8)
        engine = ProcessingEngine()
        assert engine._resolve_cluster(partition).num_machines == 8

    def test_explicit_cluster_is_used(self, medium_graph):
        partition = create_partitioner("dbh")(medium_graph, 8)
        engine = ProcessingEngine(ClusterSpec(num_machines=2))
        assert engine._resolve_cluster(partition).num_machines == 2


class TestPaperShapeProperties:
    """The causal relationships of Section III must hold in the simulator."""

    def test_pagerank_prefers_low_replication_factor(self):
        graph = generate_rmat(2048, 16000, seed=31)
        engine = ProcessingEngine()
        times = {}
        for name in ("ne", "crvc", "1dd"):
            partition = create_partitioner(name)(graph, 4)
            times[name] = engine.run(partition,
                                     PageRank(num_iterations=10)).total_seconds
        assert times["ne"] < times["1dd"]
        assert times["ne"] < times["crvc"]

    def test_synthetic_high_is_most_communication_sensitive(self):
        graph = generate_rmat(2048, 16000, seed=33)
        engine = ProcessingEngine()
        ratios = {}
        for algorithm in (SyntheticHigh(), PageRank(num_iterations=5)):
            ne_time = engine.run(create_partitioner("ne")(graph, 4),
                                 algorithm).total_seconds
            crvc_time = engine.run(create_partitioner("crvc")(graph, 4),
                                   algorithm).total_seconds
            ratios[algorithm.name] = crvc_time / ne_time
        assert ratios["synthetic_high"] > ratios["pagerank"]

    def test_label_propagation_punishes_vertex_imbalance(self):
        # DBH (balanced, medium RF) should beat NE (low RF, poor vertex
        # balance) on the computation-bound workload — Figure 2 of the paper.
        graph = generate_rmat(2048, 16000, seed=35)
        engine = ProcessingEngine()
        lp = LabelPropagation(num_iterations=10)
        dbh_time = engine.run(create_partitioner("dbh")(graph, 4), lp).total_seconds
        ne_time = engine.run(create_partitioner("ne")(graph, 4), lp).total_seconds
        assert dbh_time < ne_time
