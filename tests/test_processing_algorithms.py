"""Correctness tests for the graph processing workloads."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.generators import generate_rmat
from repro.partitioning import create_partitioner
from repro.processing import (
    ConnectedComponents,
    KCores,
    LabelPropagation,
    PageRank,
    ProcessingEngine,
    SingleSourceShortestPaths,
    SyntheticHigh,
    SyntheticLow,
    SyntheticWorkload,
    create_algorithm,
    ALL_ALGORITHM_NAMES,
)
from repro.processing.algorithms import most_frequent_neighbor_labels


def _run(graph, algorithm, k=2, partitioner="crvc"):
    partition = create_partitioner(partitioner)(graph, k)
    return ProcessingEngine().run(partition, algorithm)


class TestAlgorithmRegistry:
    def test_six_evaluation_algorithms(self):
        assert len(ALL_ALGORITHM_NAMES) == 6

    def test_create_algorithm_by_name(self):
        algorithm = create_algorithm("pagerank", num_iterations=3)
        assert algorithm.num_iterations == 3

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            create_algorithm("triangle_count")


class TestPageRank:
    def test_ranks_sum_to_one(self, small_rmat_graph):
        result = _run(small_rmat_graph, PageRank(num_iterations=15))
        assert result.vertex_state.sum() == pytest.approx(1.0, abs=1e-6)

    def test_matches_networkx(self):
        graph = generate_rmat(64, 400, seed=2).deduplicated().without_self_loops()
        result = _run(graph, PageRank(num_iterations=60))
        import networkx as nx

        expected = nx.pagerank(graph.to_networkx(), alpha=0.85, max_iter=200)
        ours = result.vertex_state
        top_ours = int(np.argmax(ours))
        top_theirs = max(expected, key=expected.get)
        assert top_ours == top_theirs
        # Rank values should correlate strongly.
        theirs = np.array([expected[v] for v in range(graph.num_vertices)])
        correlation = np.corrcoef(ours, theirs)[0, 1]
        assert correlation > 0.97

    def test_hub_ranks_higher_than_leaf(self):
        star = Graph.from_edges([(i, 0) for i in range(1, 20)])
        result = _run(star, PageRank(num_iterations=20))
        assert result.vertex_state[0] > result.vertex_state[1]

    def test_fixed_iteration_count(self, small_rmat_graph):
        result = _run(small_rmat_graph, PageRank(num_iterations=7))
        assert result.num_supersteps == 7


class TestLabelPropagation:
    def test_most_frequent_label_helper(self):
        graph = Graph.from_edges([(0, 3), (1, 3), (2, 3)], num_vertices=4)
        labels = np.array([7, 7, 5, 1])
        new_labels = most_frequent_neighbor_labels(graph, labels)
        assert new_labels[3] == 7

    def test_tie_breaks_to_smaller_label(self):
        graph = Graph.from_edges([(0, 2), (1, 2)], num_vertices=3)
        labels = np.array([9, 4, 0])
        new_labels = most_frequent_neighbor_labels(graph, labels)
        assert new_labels[2] == 4

    def test_isolated_vertex_keeps_label(self):
        graph = Graph.from_edges([(0, 1)], num_vertices=3)
        labels = np.array([0, 1, 2])
        new_labels = most_frequent_neighbor_labels(graph, labels)
        assert new_labels[2] == 2

    def test_two_cliques_converge_to_two_labels(self):
        clique_a = [(i, j) for i in range(4) for j in range(4) if i < j]
        clique_b = [(i, j) for i in range(4, 8) for j in range(4, 8) if i < j]
        graph = Graph.from_edges(clique_a + clique_b)
        result = _run(graph, LabelPropagation(num_iterations=10))
        labels = result.vertex_state
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1


class TestConnectedComponents:
    def test_two_components(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=5)
        result = _run(graph, ConnectedComponents())
        components = result.vertex_state
        assert components[0] == components[1] == components[2]
        assert components[3] == components[4]
        assert components[0] != components[3]
        assert result.converged

    def test_matches_networkx(self, small_rmat_graph):
        import networkx as nx

        result = _run(small_rmat_graph, ConnectedComponents())
        undirected = small_rmat_graph.to_networkx().to_undirected()
        expected_count = nx.number_connected_components(undirected)
        # Count components among non-isolated vertices plus isolated ones.
        ours = len(np.unique(result.vertex_state))
        isolated = sum(1 for v in undirected.nodes if undirected.degree(v) == 0)
        assert ours == expected_count

    def test_component_id_is_minimum_member(self):
        graph = Graph.from_edges([(5, 3), (3, 1)], num_vertices=6)
        result = _run(graph, ConnectedComponents())
        assert result.vertex_state[5] == 1
        assert result.vertex_state[3] == 1


class TestSSSP:
    def test_distances_on_a_path(self):
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        result = _run(graph, SingleSourceShortestPaths(source=0))
        np.testing.assert_allclose(result.vertex_state, [0, 1, 2, 3])

    def test_unreachable_vertices_stay_infinite(self):
        graph = Graph.from_edges([(0, 1), (2, 3)], num_vertices=4)
        result = _run(graph, SingleSourceShortestPaths(source=0))
        assert np.isinf(result.vertex_state[2])
        assert np.isinf(result.vertex_state[3])

    def test_matches_networkx(self):
        graph = generate_rmat(64, 500, seed=5).deduplicated()
        result = _run(graph, SingleSourceShortestPaths(source=0))
        import networkx as nx

        expected = nx.single_source_shortest_path_length(graph.to_networkx(), 0)
        for vertex, distance in expected.items():
            assert result.vertex_state[vertex] == pytest.approx(distance)

    def test_deterministic_random_source(self, small_rmat_graph):
        a = SingleSourceShortestPaths(seed=4).initial_state(small_rmat_graph)
        b = SingleSourceShortestPaths(seed=4).initial_state(small_rmat_graph)
        np.testing.assert_array_equal(a, b)


class TestKCores:
    def test_leaf_vertices_are_peeled(self):
        # A triangle with a pendant vertex; with k=2 the pendant is removed.
        graph = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)], num_vertices=4)
        result = _run(graph, KCores(core_k=2))
        state = result.vertex_state
        assert state[3] < 0  # peeled
        assert (state[:3] >= 0).all()

    def test_full_clique_survives(self):
        clique = [(i, j) for i in range(5) for j in range(5) if i < j]
        graph = Graph.from_edges(clique)
        result = _run(graph, KCores(core_k=3))
        assert (result.vertex_state >= 0).all()

    def test_default_threshold_is_mean_degree(self, small_rmat_graph):
        algorithm = KCores()
        expected = float(np.ceil(small_rmat_graph.degrees().mean()))
        assert algorithm._threshold(small_rmat_graph) == expected

    def test_converges(self, small_rmat_graph):
        result = _run(small_rmat_graph, KCores())
        assert result.converged


class TestSynthetic:
    def test_feature_size_controls_message_size(self):
        assert SyntheticLow().message_size == 1.0
        assert SyntheticHigh().message_size == 10.0

    def test_invalid_feature_size(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(feature_size=0)

    def test_runs_fixed_iterations(self, small_rmat_graph):
        result = _run(small_rmat_graph, SyntheticHigh())
        assert result.num_supersteps == 5

    def test_state_shape(self, small_rmat_graph):
        result = _run(small_rmat_graph, SyntheticHigh())
        assert result.vertex_state.shape == (small_rmat_graph.num_vertices, 10)

    def test_high_costs_more_than_low(self, small_rmat_graph):
        partition = create_partitioner("crvc")(small_rmat_graph, 4)
        engine = ProcessingEngine()
        high = engine.run(partition, SyntheticHigh())
        low = engine.run(partition, SyntheticLow())
        assert high.total_seconds > low.total_seconds
