"""Tests for the layered serving stack: the transport-agnostic RequestCore,
ModelRouter (multi-model routing + registry tag watcher), admission control
(429 + Retry-After shedding), client retries, the prefork frontend, and the
serving package's no-dependency import lint."""

import ast
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.generators import generate_rmat
from repro.graph import GraphStore, compute_properties
from repro.ease import EASE, GraphProfiler
from repro.ease.persistence import save_ease
from repro.serving import (
    AdmissionGate,
    GraphResolver,
    ModelRegistry,
    ModelRouter,
    PreforkFrontend,
    RequestCore,
    SelectionClient,
    SelectionHTTPServer,
    SelectionService,
    parse_model_spec,
)
from repro.serving.client import SelectionServiceError

PARTITIONERS = ("2d", "dbh", "ne")


@pytest.fixture(scope="module")
def small_profile():
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(3)]
    return profiler.profile(graphs, graphs)


@pytest.fixture(scope="module")
def trained_system(small_profile):
    return EASE(partitioner_names=PARTITIONERS).train(small_profile)


@pytest.fixture(scope="module")
def alt_system(small_profile):
    # A distinct trained system (different feature set -> different bundle
    # bytes -> different registry version) for promote/rollout tests.
    return EASE(partitioner_names=PARTITIONERS,
                feature_set="simple").train(small_profile)


@pytest.fixture(scope="module")
def query_graph():
    return generate_rmat(128, 900, seed=33)


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(str(tmp_path / "registry"))


def _select_payload(graph, **overrides):
    payload = {"properties": compute_properties(
        graph, exact_triangles=False).as_dict(),
        "algorithm": "pagerank", "num_partitions": 2, "goal": "end_to_end"}
    payload.update(overrides)
    return payload


# --------------------------------------------------------------------------- #
# RequestCore: the full endpoint surface with no socket anywhere
# --------------------------------------------------------------------------- #
class TestRequestCore:
    @pytest.fixture()
    def core(self, registry, trained_system):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        service = SelectionService.from_registry(registry, "ease")
        return RequestCore(ModelRouter({"default": service}),
                           registry=registry)

    def test_healthz(self, core):
        response = core.handle("GET", "/healthz")
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["model"]["name"] == "ease"
        assert response.payload["admission"]["in_flight"] == 0
        assert response.payload["queue_depth"] == 0
        assert "default" in response.payload["models"]
        json.loads(response.body())  # payload is JSON-serializable

    def test_healthz_ignores_unknown_query(self, core):
        # the do_GET exact-match regression: a query string must not 404
        assert core.handle("GET", "/healthz", query="probe=1").status == 200

    def test_healthz_unknown_model_query_is_400(self, core):
        response = core.handle("GET", "/healthz", query="model=nope")
        assert response.status == 400
        assert "nope" in response.payload["error"]

    def test_models(self, core):
        response = core.handle("GET", "/v1/models")
        assert response.status == 200
        assert response.payload["loaded"]["name"] == "ease"
        assert response.payload["default_model"] == "default"
        assert response.payload["routes"]["default"]["name"] == "ease"
        assert len(response.payload["models"]) == 1

    def test_select_with_dict_body(self, core, query_graph):
        response = core.handle("POST", "/v1/select",
                               body=_select_payload(query_graph))
        assert response.status == 200
        assert response.payload["selected"] in PARTITIONERS
        assert response.payload["model"] == "default"

    def test_select_with_bytes_body(self, core, query_graph):
        body = json.dumps(_select_payload(query_graph)).encode("utf-8")
        response = core.handle("POST", "/v1/select", body=body)
        assert response.status == 200
        assert response.payload["selected"] in PARTITIONERS

    def test_predict(self, core, query_graph):
        response = core.handle("POST", "/v1/predict",
                               body=_select_payload(query_graph))
        assert response.status == 200
        assert [p["partitioner"]
                for p in response.payload["predictions"]] == \
            list(PARTITIONERS)

    def test_malformed_bodies_are_400(self, core):
        for body in (None, b"{not json", [1, 2], {"algorithm": "pagerank"}):
            response = core.handle("POST", "/v1/select", body=body)
            assert response.status == 400, body
            assert "error" in response.payload

    def test_unknown_paths_are_404(self, core):
        assert core.handle("GET", "/nope").status == 404
        assert core.handle("POST", "/v1/nope", body={}).status == 404

    def test_unknown_method_is_405(self, core):
        assert core.handle("DELETE", "/v1/select").status == 405

    def test_unknown_model_names_available_tags(self, core, query_graph):
        response = core.handle(
            "POST", "/v1/select",
            body=_select_payload(query_graph, model="canary"))
        assert response.status == 400
        assert "canary" in response.payload["error"]
        assert "default" in response.payload["error"]


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmissionGate:
    def test_unlimited_gate_counts_in_flight(self):
        gate = AdmissionGate(None)
        assert all(gate.try_acquire() for _ in range(100))
        assert gate.in_flight == 100
        assert gate.shed_total == 0
        for _ in range(100):
            gate.release()
        assert gate.in_flight == 0

    def test_bounded_gate_sheds_overflow(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire() and gate.try_acquire()
        assert not gate.try_acquire()
        assert gate.as_dict() == {"limit": 2, "in_flight": 2,
                                  "admitted_total": 2, "shed_total": 1}
        gate.release()
        assert gate.try_acquire()

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionGate().release()

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionGate(0)
        with pytest.raises(ValueError):
            AdmissionGate(1, retry_after_seconds=0)

    def test_one_slot_gate_is_deterministic_through_core(
            self, registry, trained_system, query_graph):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        service = SelectionService.from_registry(registry, "ease",
                                                 max_inflight=1)
        core = RequestCore(ModelRouter({"default": service}))
        body = _select_payload(query_graph)
        # Occupy the single slot: every request is now deterministically shed.
        assert service.admission.try_acquire()
        try:
            for _ in range(3):
                response = core.handle("POST", "/v1/select", body=body)
                assert response.status == 429
                assert dict(response.headers)["Retry-After"] == "1"
                assert response.payload["retry_after"] == 1
                assert response.payload["model"] == "default"
            health = core.handle("GET", "/healthz").payload
            assert health["admission"]["shed_total"] == 3
            assert health["admission"]["in_flight"] == 1
        finally:
            service.admission.release()
        # Slot free again: the same request is admitted and answered.
        response = core.handle("POST", "/v1/select", body=body)
        assert response.status == 200
        assert service.admission.in_flight == 0


# --------------------------------------------------------------------------- #
# ModelRouter: specs, routing, shared resolver, tag watcher
# --------------------------------------------------------------------------- #
class TestModelSpecs:
    def test_parse_model_spec(self):
        assert parse_model_spec("prod=ease@production") == \
            ("prod", "ease@production")
        assert parse_model_spec("canary=bundle.pkl") == \
            ("canary", "bundle.pkl")

    @pytest.mark.parametrize("spec", ["", "noequals", "=x", "tag="])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError, match="TAG="):
            parse_model_spec(spec)


class TestModelRouter:
    def _two_tag_registry(self, registry, trained_system, alt_system):
        prod = registry.publish(trained_system, "ease")
        canary = registry.publish(alt_system, "ease")
        assert prod.version != canary.version
        registry.promote("ease", prod.version, tag="production")
        registry.promote("ease", canary.version, tag="canary")
        return prod, canary

    def test_from_specs_routes_by_field_and_header(
            self, registry, trained_system, alt_system, query_graph):
        prod, canary = self._two_tag_registry(registry, trained_system,
                                              alt_system)
        router = ModelRouter.from_specs(
            [("prod", "ease@production"), ("canary", "ease@canary")],
            registry=registry)
        assert router.tags() == ["canary", "prod"]
        assert router.default_tag == "prod"
        assert router.route().model_info["version"] == prod.version
        assert router.route("canary").model_info["version"] == canary.version
        with pytest.raises(KeyError, match="available"):
            router.route("nope")

        core = RequestCore(router, registry=registry)
        body = _select_payload(query_graph)
        assert core.handle("POST", "/v1/select",
                           body=body).payload["model"] == "prod"
        assert core.handle(
            "POST", "/v1/select",
            body=dict(body, model="canary")).payload["model"] == "canary"
        # header routing, case-insensitively
        assert core.handle(
            "POST", "/v1/select", headers={"x-repro-model": "canary"},
            body=body).payload["model"] == "canary"
        # the body field wins over the header
        assert core.handle(
            "POST", "/v1/select", headers={"X-Repro-Model": "canary"},
            body=dict(body, model="prod")).payload["model"] == "prod"

    def test_services_share_one_graph_resolver(
            self, tmp_path, registry, trained_system, alt_system,
            query_graph):
        self._two_tag_registry(registry, trained_system, alt_system)
        store = GraphStore(str(tmp_path / "store"))
        fingerprint = store.save(query_graph)
        router = ModelRouter.from_specs(
            [("prod", "ease@production"), ("canary", "ease@canary")],
            registry=registry, graph_store=str(tmp_path / "store"))
        resolvers = {id(s.graph_resolver)
                     for s in router.services.values()}
        assert len(resolvers) == 1
        core = RequestCore(router)
        for tag in ("prod", "canary"):
            response = core.handle(
                "POST", "/v1/select",
                body={"graph_fingerprint": fingerprint,
                      "algorithm": "pagerank", "num_partitions": 2,
                      "goal": "end_to_end", "model": tag})
            assert response.status == 200
        # both tags resolved through the same LRU entry
        assert len(router.default_service.graph_resolver) == 1

    def test_duplicate_tags_rejected(self, registry, trained_system):
        registry.publish(trained_system, "ease")
        with pytest.raises(ValueError, match="duplicate"):
            ModelRouter.from_specs([("m", "ease"), ("m", "ease")],
                                   registry=registry)

    def test_default_tag_validated(self, registry, trained_system):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        service = SelectionService.from_registry(registry, "ease")
        with pytest.raises(ValueError, match="default tag"):
            ModelRouter({"prod": service}, default="nope")

    def test_check_tags_follows_promote(self, registry, trained_system,
                                        alt_system):
        prod, canary = self._two_tag_registry(registry, trained_system,
                                              alt_system)
        router = ModelRouter.from_specs([("prod", "ease@production")],
                                        registry=registry)
        assert router.check_tags() == 0  # tag unchanged -> no reload
        registry.promote("ease", canary.version, tag="production")
        assert router.check_tags() == 1
        assert router.route("prod").model_info["version"] == canary.version
        assert router.watch_reloads == 1

    def test_check_tags_survives_corrupt_registry(self, registry,
                                                  trained_system):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        router = ModelRouter.from_specs([("prod", "ease@production")],
                                        registry=registry)
        tags_path = os.path.join(registry.root, "tags", "ease.json")
        with open(tags_path, "w", encoding="utf-8") as handle:
            handle.write("{broken json")
        assert router.check_tags() == 0  # swallowed, not raised
        assert router.watch_checks == 1

    def test_watcher_rolls_out_under_concurrent_traffic(
            self, registry, trained_system, alt_system, query_graph):
        prod, canary = self._two_tag_registry(registry, trained_system,
                                              alt_system)
        router = ModelRouter.from_specs(
            [("prod", "ease@production")], registry=registry,
            watch_interval=0.01,
            batch_wait_seconds=0.001)
        core = RequestCore(router)
        body = _select_payload(query_graph)
        failures = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                response = core.handle("POST", "/v1/select", body=body)
                if response.status != 200:
                    failures.append(response.payload)

        with router:
            assert router.health()["tag_watcher"]["running"] is True
            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                registry.promote("ease", canary.version, tag="production")
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if router.route("prod").model_info["version"] == \
                            canary.version:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("promote never rolled out")
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
        assert not failures
        assert router.watch_reloads >= 1
        assert router.health()["tag_watcher"]["running"] is False

    def test_start_stop_idempotent(self, registry, trained_system):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        service = SelectionService.from_registry(registry, "ease")
        router = ModelRouter({"default": service}, watch_interval=0.01)
        router.start()
        router.start()
        assert service.running
        worker = service._worker
        router.start()
        assert service._worker is worker  # no second batcher thread
        router.stop()
        router.stop()
        assert not service.running
        # restartable after stop
        router.start()
        assert service.running
        router.stop()


# --------------------------------------------------------------------------- #
# Live-socket tests: healthz query, keep-alive hygiene, 503 guard, retries
# --------------------------------------------------------------------------- #
@pytest.fixture()
def live_server(registry, trained_system):
    entry = registry.publish(trained_system, "ease")
    registry.promote("ease", entry.version)
    service = SelectionService.from_registry(registry, "ease",
                                             batch_wait_seconds=0.001,
                                             max_inflight=4)
    server = SelectionHTTPServer(service, registry=registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    with server:
        thread.start()
        yield server
        server.shutdown()
    thread.join(timeout=5)


class TestHTTPAdapter:
    def test_healthz_with_query_string(self, live_server):
        # regression: exact-path matching 404ed GET /healthz?probe=1
        with urllib.request.urlopen(f"{live_server.url}/healthz?probe=1",
                                    timeout=10) as response:
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"

    def test_healthz_model_query_routes(self, live_server):
        with urllib.request.urlopen(
                f"{live_server.url}/healthz?model=default",
                timeout=10) as response:
            assert json.loads(response.read())["model"]["name"] == "ease"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{live_server.url}/healthz?model=nope",
                                   timeout=10)
        assert excinfo.value.code == 400

    def test_keep_alive_survives_invalid_json(self, live_server,
                                              query_graph):
        import http.client

        host, port = live_server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            # A fully-framed but invalid body: the server answers 400 and
            # keeps the connection; the next request on the same socket
            # must not desync.
            connection.request("POST", "/v1/select", body=b"{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            body = json.dumps(_select_payload(query_graph)).encode("utf-8")
            connection.request("POST", "/v1/select", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["selected"] in PARTITIONERS
        finally:
            connection.close()

    def test_bad_framing_closes_connection(self, live_server):
        import http.client

        host, port = live_server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            # No Content-Length: unread wire bytes would desync keep-alive,
            # so the server must answer 400 *and* close the connection.
            connection.putrequest("POST", "/v1/select",
                                  skip_accept_encoding=True)
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert response.will_close
        finally:
            connection.close()

    def test_corrupt_registry_is_503_not_dead_thread(self, live_server,
                                                     registry):
        client = SelectionClient(live_server.url)
        [entry] = registry.list_models()
        manifest = os.path.join(entry.path, "manifest.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write("{broken json")
        with pytest.raises(SelectionServiceError) as excinfo:
            client.models()
        assert excinfo.value.status == 503
        assert "registry listing" in excinfo.value.message
        # handler threads survived: the server still answers
        assert client.health()["status"] == "ok"


class TestClientRetries:
    def test_retry_after_429_until_slot_frees(self, live_server,
                                              query_graph):
        service = live_server.service
        client = SelectionClient(live_server.url, retries=3)
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            # second shed -> free the gate so the third attempt succeeds
            if len(sleeps) == 2:
                for _ in range(occupied):
                    service.admission.release()

        client._sleep = fake_sleep
        occupied = 0
        while service.admission.try_acquire():
            occupied += 1
        try:
            response = client.select(_select_payload(query_graph),
                                     "pagerank", 2)
        finally:
            # fake_sleep released them on the second retry
            assert service.admission.in_flight == 0
        assert response["selected"] in PARTITIONERS
        assert len(sleeps) == 2
        # jittered Retry-After: within [hint/2, hint] of the 1s hint
        assert all(0.5 <= s <= 1.0 for s in sleeps)

    def test_no_retries_surfaces_429(self, live_server, query_graph):
        service = live_server.service
        client = SelectionClient(live_server.url)  # retries=0
        occupied = 0
        while service.admission.try_acquire():
            occupied += 1
        try:
            with pytest.raises(SelectionServiceError) as excinfo:
                client.select(_select_payload(query_graph), "pagerank", 2)
        finally:
            for _ in range(occupied):
                service.admission.release()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == "1"

    def test_retries_exhausted_surfaces_429(self, live_server, query_graph):
        service = live_server.service
        client = SelectionClient(live_server.url, retries=2)
        client._sleep = lambda seconds: None
        occupied = 0
        while service.admission.try_acquire():
            occupied += 1
        try:
            with pytest.raises(SelectionServiceError) as excinfo:
                client.select(_select_payload(query_graph), "pagerank", 2)
        finally:
            for _ in range(occupied):
                service.admission.release()
        assert excinfo.value.status == 429
        assert service.admission.shed_total >= 3  # initial + 2 retries

    def test_connection_error_wrapped(self):
        # bind-then-close guarantees a refused port
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = SelectionClient(f"http://127.0.0.1:{port}", timeout=2)
        with pytest.raises(SelectionServiceError) as excinfo:
            client.health()
        assert excinfo.value.status is None
        assert "connection error" in str(excinfo.value)

    def test_model_header_sent(self, live_server, query_graph):
        client = SelectionClient(live_server.url, model="default")
        response = client.select(_select_payload(query_graph), "pagerank", 2)
        assert response["model"] == "default"
        with pytest.raises(SelectionServiceError) as excinfo:
            SelectionClient(live_server.url, model="nope").select(
                _select_payload(query_graph), "pagerank", 2)
        assert excinfo.value.status == 400


# --------------------------------------------------------------------------- #
# Prefork frontend (in-process pool + full CLI subprocess)
# --------------------------------------------------------------------------- #
class TestPreforkFrontend:
    def test_validation(self, registry, trained_system):
        entry = registry.publish(trained_system, "ease")
        registry.promote("ease", entry.version)
        service = SelectionService.from_registry(registry, "ease")
        with pytest.raises(ValueError, match="workers"):
            PreforkFrontend(service, workers=0, port=0)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_workers_share_listener_and_models(
            self, tmp_path, registry, trained_system, alt_system,
            query_graph):
        prod = registry.publish(trained_system, "ease")
        canary = registry.publish(alt_system, "ease")
        registry.promote("ease", prod.version, tag="production")
        registry.promote("ease", canary.version, tag="canary")
        store = GraphStore(str(tmp_path / "store"))
        fingerprint = store.save(query_graph)
        bundle = str(tmp_path / "ease.pkl")
        save_ease(trained_system, bundle)

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--registry", registry.root,
             "--model", "prod=ease@production",
             "--model", "canary=ease@canary",
             "--graph-store", str(tmp_path / "store"),
             "--workers", "2", "--port", "0",
             "--batch-wait-ms", "1"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        url = [None]

        def find_url():
            for line in process.stdout:
                if " on http://" in line:
                    url[0] = line.rsplit(" on ", 1)[1].strip()
                    return

        reader = threading.Thread(target=find_url, daemon=True)
        reader.start()
        reader.join(timeout=60)
        try:
            assert url[0], "server never announced its URL"
            client = SelectionClient(url[0], timeout=30)
            # Both tags answer concurrently from one port, resolving the
            # same stored graph; answers must match the tag's model.
            for tag, system in (("prod", trained_system),
                                ("canary", alt_system)):
                response = SelectionClient(url[0], timeout=30,
                                           model=tag).select(
                    fingerprint, "pagerank", 2)
                expected = system.select_partitioner(
                    query_graph, "pagerank", 2)
                assert response["model"] == tag
                assert response["selected"] == expected.selected
            # Repeated healthz hits land on >1 worker pid (the kernel
            # round-robins accepts; give it a bounded number of tries).
            pids = set()
            for _ in range(60):
                pids.add(client.health()["pid"])
                if len(pids) >= 2:
                    break
            assert len(pids) >= 2, f"only saw worker pids {pids}"
            assert all(pid != process.pid for pid in pids)
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        assert process.returncode == 0


# --------------------------------------------------------------------------- #
# Import lint: serving stays stdlib + numpy + repro
# --------------------------------------------------------------------------- #
class TestServingImportLint:
    def test_serving_imports_only_stdlib_numpy_repro(self):
        import repro.serving

        package_dir = os.path.dirname(repro.serving.__file__)
        allowed_roots = set(sys.stdlib_module_names) | {"numpy", "repro"}
        offenders = []
        for filename in sorted(os.listdir(package_dir)):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(package_dir, filename)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=filename)
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    roots = [alias.name.split(".")[0]
                             for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level > 0:  # relative import: inside repro
                        continue
                    roots = [(node.module or "").split(".")[0]]
                else:
                    continue
                for root in roots:
                    if root and root not in allowed_roots:
                        offenders.append(f"{filename}:{node.lineno}: {root}")
        assert not offenders, \
            "serving must stay dependency-free, found: " + str(offenders)
