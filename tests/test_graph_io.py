"""Tests for edge-list and npz graph I/O."""

import numpy as np
import pytest

from repro.graph import Graph, read_edge_list, write_edge_list, save_npz, load_npz


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path, tiny_graph):
        path = tmp_path / "tiny.txt"
        write_edge_list(tiny_graph, str(path))
        loaded = read_edge_list(str(path))
        np.testing.assert_array_equal(loaded.src, tiny_graph.src)
        np.testing.assert_array_equal(loaded.dst, tiny_graph.dst)

    def test_comments_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n1 2\n")
        graph = read_edge_list(str(path))
        assert graph.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(str(path))

    def test_name_defaults_to_filename(self, tmp_path):
        path = tmp_path / "mygraph.txt"
        path.write_text("0 1\n")
        assert read_edge_list(str(path)).name == "mygraph"


class TestNpzIO:
    def test_roundtrip_preserves_metadata(self, tmp_path, tiny_graph):
        path = tmp_path / "tiny.npz"
        save_npz(tiny_graph, str(path))
        loaded = load_npz(str(path))
        assert loaded.name == tiny_graph.name
        assert loaded.num_vertices == tiny_graph.num_vertices
        np.testing.assert_array_equal(loaded.src, tiny_graph.src)
        np.testing.assert_array_equal(loaded.dst, tiny_graph.dst)
