"""Tests for training-data enrichment and the model-family comparison."""

import numpy as np
import pytest

from repro.generators import generate_rmat, generate_realworld_graph
from repro.ml import RandomForestRegressor
from repro.ease import (
    EnrichmentStudy,
    GraphProfiler,
    MODEL_FAMILIES,
    PartitioningQualityPredictor,
    compare_model_families,
    default_param_grids,
)


def _fast_predictor():
    return PartitioningQualityPredictor(
        model_factory=lambda target: RandomForestRegressor(
            n_estimators=8, max_depth=8, random_state=0))


@pytest.fixture(scope="module")
def profiler():
    return GraphProfiler(partitioner_names=("2d", "ne", "hdrf"),
                         partition_counts=(4,))


@pytest.fixture(scope="module")
def base_records(profiler):
    graphs = [generate_rmat(128, 700 + 200 * s, seed=s, graph_type="rmat")
              for s in range(5)]
    return profiler.profile_quality(graphs).quality


@pytest.fixture(scope="module")
def wiki_pool(profiler):
    graphs = [generate_realworld_graph("wiki", 150 + 30 * s, 1200 + 100 * s,
                                       seed=100 + s)
              for s in range(6)]
    return profiler.profile_quality(graphs).quality


@pytest.fixture(scope="module")
def test_records(profiler):
    graphs = [generate_realworld_graph("wiki", 220, 1700, seed=500),
              generate_realworld_graph("soc", 220, 1700, seed=501)]
    return profiler.profile_quality(graphs).quality


class TestEnrichmentStudy:
    def test_levels_and_repetitions(self, base_records, wiki_pool, test_records):
        study = EnrichmentStudy(base_records, wiki_pool, test_records,
                                predictor_factory=_fast_predictor, seed=1)
        results = study.run(enrichment_sizes=(0, 3, 6), repetitions=2)
        assert [r.num_enrichment_graphs for r in results] == [0, 3, 6]
        for result in results:
            assert set(result.mape_per_type) == {"wiki", "soc"}
            assert result.overall_mape >= 0

    def test_enrichment_size_capped_at_pool(self, base_records, wiki_pool,
                                            test_records):
        study = EnrichmentStudy(base_records, wiki_pool, test_records,
                                predictor_factory=_fast_predictor)
        results = study.run(enrichment_sizes=(999,), repetitions=1)
        assert results[0].num_enrichment_graphs == len(
            {r.graph_name for r in wiki_pool})

    def test_full_enrichment_improves_wiki_prediction(self, base_records,
                                                      wiki_pool, test_records):
        study = EnrichmentStudy(base_records, wiki_pool, test_records,
                                predictor_factory=_fast_predictor, seed=2)
        results = study.run(enrichment_sizes=(0, 6), repetitions=1)
        without = results[0].mape_of("wiki")
        with_enrichment = results[1].mape_of("wiki")
        # Enriching with same-type graphs must not make wiki predictions worse.
        assert with_enrichment <= without * 1.1

    def test_mape_of_unknown_type_raises(self, base_records, wiki_pool,
                                         test_records):
        study = EnrichmentStudy(base_records, wiki_pool, test_records,
                                predictor_factory=_fast_predictor)
        result = study.run(enrichment_sizes=(0,), repetitions=1)[0]
        with pytest.raises(KeyError):
            result.mape_of("citation")


class TestModelFamilyComparison:
    def test_six_families_defined(self):
        assert len(MODEL_FAMILIES) == 6
        assert set(default_param_grids()) == set(MODEL_FAMILIES)

    def test_comparison_runs_subset(self):
        rng = np.random.default_rng(0)
        features = rng.random((80, 4))
        targets = 2 * features[:, 0] + features[:, 1]
        comparison = compare_model_families(
            features, targets,
            families=("polynomial_regression", "knn", "random_forest"),
            n_splits=3)
        assert len(comparison.results) == 3
        table = comparison.as_table()
        assert table[0][1] <= table[-1][1]
        assert comparison.best().family == table[0][0]

    def test_polynomial_wins_on_polynomial_target(self):
        rng = np.random.default_rng(1)
        features = rng.random((120, 3))
        targets = features[:, 0] ** 2 + 2 * features[:, 1] * features[:, 2]
        comparison = compare_model_families(
            features, targets, families=("polynomial_regression", "knn"),
            n_splits=3)
        assert comparison.best().family == "polynomial_regression"

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            compare_model_families(np.ones((20, 2)), np.ones(20),
                                   families=("deep_gnn",), n_splits=2)

    def test_tuned_comparison_records_params(self):
        rng = np.random.default_rng(2)
        features = rng.random((60, 2))
        targets = features[:, 0]
        comparison = compare_model_families(
            features, targets, families=("knn",), n_splits=3, tune=True)
        assert comparison.results[0].best_params
