"""Tests for the profiling pipeline and dataset containers."""

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.ease import GraphProfiler, ProfileDataset
from repro.partitioning import QUALITY_METRIC_NAMES


@pytest.fixture(scope="module")
def graphs():
    return [generate_rmat(128, 700, seed=s, graph_type="rmat") for s in range(3)]


@pytest.fixture(scope="module")
def profiler():
    return GraphProfiler(partitioner_names=("2d", "dbh", "ne"),
                         partition_counts=(2, 4),
                         processing_partition_count=2,
                         algorithms=("pagerank", "connected_components"))


@pytest.fixture(scope="module")
def quality_dataset(profiler, graphs):
    return profiler.profile_quality(graphs)


@pytest.fixture(scope="module")
def processing_dataset(profiler, graphs):
    return profiler.profile_processing(graphs[:2])


class TestProfileQuality:
    def test_record_counts(self, quality_dataset, graphs):
        # 3 graphs x 3 partitioners x 2 partition counts.
        assert len(quality_dataset.quality) == 18
        assert len(quality_dataset.partitioning_time) == 18
        assert len(quality_dataset.processing) == 0

    def test_records_contain_all_metrics(self, quality_dataset):
        for record in quality_dataset.quality:
            assert set(record.metrics) == set(QUALITY_METRIC_NAMES)
            assert record.metrics["replication_factor"] >= 1.0

    def test_partitioning_times_positive(self, quality_dataset):
        assert all(r.seconds > 0 for r in quality_dataset.partitioning_time)

    def test_properties_shared_per_graph(self, quality_dataset):
        by_graph = {}
        for record in quality_dataset.quality:
            by_graph.setdefault(record.graph_name, set()).add(id(record.properties))
        # Properties are computed once per graph and shared between records.
        assert all(len(ids) == 1 for ids in by_graph.values())


class TestProfileProcessing:
    def test_record_counts(self, processing_dataset):
        # 2 graphs x 3 partitioners x 2 algorithms.
        assert len(processing_dataset.processing) == 12
        # plus one quality + timing record per (graph, partitioner).
        assert len(processing_dataset.quality) == 6

    def test_target_is_average_iteration_for_pagerank(self, processing_dataset):
        for record in processing_dataset.processing:
            if record.algorithm == "pagerank":
                assert record.target_seconds < record.total_seconds
                assert record.target_seconds == pytest.approx(
                    record.total_seconds / record.num_supersteps)

    def test_target_is_total_for_convergence_algorithms(self, processing_dataset):
        for record in processing_dataset.processing:
            if record.algorithm == "connected_components":
                assert record.target_seconds == pytest.approx(record.total_seconds)

    def test_invalid_time_mode_rejected(self):
        with pytest.raises(ValueError):
            GraphProfiler(partitioning_time_mode="guess")

    def test_wall_clock_mode(self, graphs):
        profiler = GraphProfiler(partitioner_names=("2d",),
                                 partition_counts=(2,),
                                 partitioning_time_mode="wall_clock")
        dataset = profiler.profile_quality(graphs[:1])
        assert dataset.partitioning_time[0].seconds > 0


class TestProfileDataset:
    def test_extend_merges_records(self, quality_dataset, processing_dataset):
        merged = ProfileDataset()
        merged.extend(quality_dataset).extend(processing_dataset)
        assert len(merged.quality) == (len(quality_dataset.quality)
                                       + len(processing_dataset.quality))
        assert len(merged.processing) == len(processing_dataset.processing)

    def test_summary_counts(self, quality_dataset):
        summary = quality_dataset.summary()
        assert summary["quality_records"] == 18
        assert summary["graphs"] == 3

    def test_filter_quality(self, quality_dataset):
        only_ne = quality_dataset.filter_quality(partitioners=["ne"])
        assert len(only_ne) == 6
        assert all(r.partitioner == "ne" for r in only_ne)

    def test_filter_by_type(self, quality_dataset):
        none_found = quality_dataset.filter_quality(graph_types=["wiki"])
        assert none_found == []
