"""Unit tests for the ML base utilities and the strategy-evaluation records."""

import numpy as np
import pytest

from repro.ml import LinearRegression, RandomForestRegressor, clone
from repro.ml.base import check_2d, check_fitted
from repro.ease import OptimizationGoal
from repro.ease.evaluation import JobOutcome, StrategyComparison


class TestCheck2D:
    def test_promotes_one_dimensional_input(self):
        result = check_2d(np.arange(4))
        assert result.shape == (4, 1)

    def test_rejects_three_dimensional_input(self):
        with pytest.raises(ValueError):
            check_2d(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_2d(np.array([[np.nan, 1.0]]))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            check_2d(np.array([[np.inf, 1.0]]))


class TestEstimatorProtocol:
    def test_check_fitted_raises_before_fit(self):
        model = LinearRegression()
        with pytest.raises(RuntimeError):
            check_fitted(model, "coefficients_")

    def test_clone_is_unfitted(self):
        model = RandomForestRegressor(n_estimators=3)
        model.fit(np.random.default_rng(0).random((20, 2)), np.arange(20.0))
        copy = clone(model)
        assert copy.trees_ is None
        assert copy.n_estimators == 3

    def test_score_is_r2(self):
        rng = np.random.default_rng(1)
        features = rng.random((50, 2))
        targets = features[:, 0] * 2
        model = LinearRegression().fit(features, targets)
        assert model.score(features, targets) == pytest.approx(1.0)

    def test_repr_contains_parameters(self):
        assert "n_estimators=7" in repr(RandomForestRegressor(n_estimators=7))


class TestJobOutcome:
    def _job(self):
        return JobOutcome(
            graph_name="g", graph_type="wiki", algorithm="pagerank",
            num_partitions=4,
            processing_seconds={"ne": 1.0, "2d": 3.0},
            partitioning_seconds={"ne": 5.0, "2d": 0.5},
            replication_factor={"ne": 1.2, "2d": 2.5})

    def test_end_to_end_is_sum(self):
        job = self._job()
        assert job.end_to_end_seconds("ne") == pytest.approx(6.0)
        assert job.end_to_end_seconds("2d") == pytest.approx(3.5)

    def test_cost_depends_on_goal(self):
        job = self._job()
        # For the processing goal NE wins; end-to-end, 2D wins because NE's
        # partitioning time is not amortised — the core trade-off of the paper.
        assert job.cost("ne", OptimizationGoal.PROCESSING) < job.cost(
            "2d", OptimizationGoal.PROCESSING)
        assert job.cost("2d", OptimizationGoal.END_TO_END) < job.cost(
            "ne", OptimizationGoal.END_TO_END)


class TestStrategyComparison:
    def test_relative_to(self):
        comparison = StrategyComparison(
            algorithm="pagerank", goal="end_to_end", num_jobs=4,
            strategy_seconds={"SPS": 2.0, "SO": 1.6, "SW": 4.0, "SR": 3.0,
                              "SSRF": 2.5},
            optimal_pick_fraction={"SPS": 0.5, "SO": 1.0, "SW": 0.0,
                                   "SR": 0.1, "SSRF": 0.25})
        assert comparison.relative_to("SPS", "SO") == pytest.approx(1.25)
        assert comparison.relative_to("SPS", "SW") == pytest.approx(0.5)
