"""Tests for model/dataset persistence and the command-line interface."""

import os

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.graph import save_npz, write_edge_list
from repro.ease import EASE, GraphProfiler, ProfileDataset
from repro.ease.persistence import (
    load_dataset,
    load_ease,
    save_dataset,
    save_ease,
)
from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def small_profile():
    profiler = GraphProfiler(partitioner_names=("2d", "dbh", "ne"),
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(4)]
    return profiler.profile(graphs, graphs)


@pytest.fixture(scope="module")
def trained_system(small_profile):
    return EASE(partitioner_names=("2d", "dbh", "ne")).train(small_profile)


class TestPersistence:
    def test_dataset_roundtrip(self, tmp_path, small_profile):
        path = str(tmp_path / "profile.pkl")
        save_dataset(small_profile, path)
        loaded = load_dataset(path)
        assert loaded.summary() == small_profile.summary()

    def test_ease_roundtrip_preserves_predictions(self, tmp_path,
                                                  trained_system,
                                                  small_profile):
        path = str(tmp_path / "ease.pkl")
        save_ease(trained_system, path)
        loaded = load_ease(path)
        record = small_profile.quality[0]
        original = trained_system.quality_predictor.predict(
            record.properties, "ne", 2).as_dict()
        restored = loaded.quality_predictor.predict(
            record.properties, "ne", 2).as_dict()
        for key in original:
            assert original[key] == pytest.approx(restored[key])

    def test_kind_mismatch_is_rejected(self, tmp_path, trained_system):
        path = str(tmp_path / "ease.pkl")
        save_ease(trained_system, path)
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_type_validation(self, tmp_path, small_profile):
        with pytest.raises(TypeError):
            save_ease(small_profile, str(tmp_path / "x.pkl"))
        with pytest.raises(TypeError):
            save_dataset(object(), str(tmp_path / "y.pkl"))

    def test_garbage_file_is_rejected(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        import pickle

        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_ease(str(path))


class TestCLI:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_command(self, tmp_path):
        output = str(tmp_path / "graphs")
        exit_code = main(["generate", "--output", output, "--max-graphs", "3",
                          "--scale", "0.000002"])
        assert exit_code == 0
        files = [name for name in os.listdir(output) if name.endswith(".npz")]
        assert len(files) == 3

    def test_full_cli_workflow(self, tmp_path, capsys):
        graphs_dir = tmp_path / "graphs"
        graphs_dir.mkdir()
        for seed in range(3):
            graph = generate_rmat(96, 600 + 100 * seed, seed=seed)
            save_npz(graph, str(graphs_dir / f"g{seed}.npz"))

        profile_path = str(tmp_path / "profile.pkl")
        assert main(["profile", "--graphs", str(graphs_dir),
                     "--output", profile_path,
                     "--partitioners", "2d", "dbh", "ne",
                     "--algorithms", "pagerank",
                     "--partition-counts", "2",
                     "--processing-partitions", "2"]) == 0

        model_path = str(tmp_path / "ease.pkl")
        assert main(["train", "--profile", profile_path,
                     "--output", model_path]) == 0

        query_graph = generate_rmat(128, 900, seed=9)
        query_path = str(tmp_path / "query.txt")
        write_edge_list(query_graph, query_path)
        assert main(["select", "--model", model_path, "--graph", query_path,
                     "--algorithm", "pagerank", "--partitions", "2",
                     "--goal", "processing"]) == 0
        output = capsys.readouterr().out
        assert "selected partitioner:" in output
        assert "end-to-end (s)" in output

    def test_profile_rejects_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["profile", "--graphs", str(empty),
                  "--output", str(tmp_path / "p.pkl")])
