"""Tests for ML preprocessing and evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    OneHotEncoder,
    PolynomialFeatures,
    StandardScaler,
    mae,
    mape,
    r2_score,
    rmse,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_does_not_produce_nan(self):
        data = np.column_stack([np.ones(10), np.arange(10)])
        scaled = StandardScaler().fit_transform(data)
        assert np.isfinite(scaled).all()

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.random((50, 3)) * 10
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((3, 2)))

    def test_dimension_mismatch_raises(self):
        scaler = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.ones((5, 2)))


class TestOneHotEncoder:
    def test_encodes_categories(self):
        encoder = OneHotEncoder()
        encoded = encoder.fit_transform(["ne", "dbh", "ne", "hdrf"])
        assert encoded.shape == (4, 3)
        np.testing.assert_allclose(encoded.sum(axis=1), 1.0)
        # Same category maps to the same column.
        np.testing.assert_array_equal(encoded[0], encoded[2])

    def test_unknown_category_raises_by_default(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["c"])

    def test_unknown_category_ignored_when_requested(self):
        encoder = OneHotEncoder(handle_unknown="ignore").fit(["a", "b"])
        encoded = encoder.transform(["c"])
        np.testing.assert_allclose(encoded, 0.0)

    def test_invalid_handle_unknown(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="nonsense")


class TestPolynomialFeatures:
    def test_degree_two_feature_count(self):
        # 2 inputs -> bias + 2 linear + 3 quadratic = 6 columns.
        expanded = PolynomialFeatures(degree=2).fit_transform(np.ones((4, 2)))
        assert expanded.shape == (4, 6)

    def test_no_bias(self):
        expanded = PolynomialFeatures(degree=1, include_bias=False).fit_transform(
            np.arange(6).reshape(3, 2))
        assert expanded.shape == (3, 2)

    def test_values_of_expansion(self):
        data = np.array([[2.0, 3.0]])
        expanded = PolynomialFeatures(degree=2).fit_transform(data)
        np.testing.assert_allclose(expanded, [[1, 2, 3, 4, 6, 9]])

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialFeatures(degree=0)


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert rmse(y, y) == 0.0
        assert mape(y, y) == 0.0
        assert mae(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mape_known_value(self):
        assert mape([1.0, 2.0], [1.1, 1.8]) == pytest.approx(0.1, abs=1e-9)

    def test_mape_guards_against_zero_targets(self):
        value = mape([0.0, 1.0], [1.0, 1.0])
        assert np.isfinite(value)

    def test_r2_of_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mape([], [])

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_rmse_nonnegative_and_zero_iff_equal(self, values):
        y = np.asarray(values)
        assert rmse(y, y) == 0.0
        shifted = y + 1.0
        assert rmse(y, shifted) == pytest.approx(1.0)
