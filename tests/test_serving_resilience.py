"""Tests of serving-side resilience: the per-model circuit breaker, the
exact-extraction deadline with approximate fallback (``degraded: true``),
and the client's retry handling of shed/unavailable responses.

No sockets anywhere — everything runs through the transport-agnostic
:class:`RequestCore`, with failures injected via the ``REPRO_FAULTS``
harness (:mod:`repro.faults`).
"""

import time

import pytest

from repro.faults import FaultPlan, clear_plan, install_plan
from repro.generators import generate_rmat
from repro.ease import EASE, GraphProfiler
from repro.serving import (
    CircuitBreaker,
    ModelRouter,
    RequestCore,
    SelectionClient,
    SelectionService,
)
from repro.serving.client import SelectionServiceError

PARTITIONERS = ("2d", "dbh")


@pytest.fixture(autouse=True)
def disarm():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture(scope="module")
def trained_system():
    profiler = GraphProfiler(partitioner_names=PARTITIONERS,
                             partition_counts=(2,),
                             processing_partition_count=2,
                             algorithms=("pagerank",))
    graphs = [generate_rmat(96, 500 + 150 * s, seed=s, graph_type="rmat")
              for s in range(3)]
    return EASE(partitioner_names=PARTITIONERS).train(
        profiler.profile(graphs, graphs))


def _graph_payload(seed, **overrides):
    graph = generate_rmat(128, 900, seed=seed)
    payload = {"graph": {"src": graph.src.tolist(),
                         "dst": graph.dst.tolist(),
                         "num_vertices": graph.num_vertices},
               "algorithm": "pagerank", "num_partitions": 2,
               "goal": "end_to_end"}
    payload.update(overrides)
    return payload


# --------------------------------------------------------------------------- #
# CircuitBreaker unit behaviour
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_at_the_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_seconds=60.0)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() == (True, None)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert isinstance(retry_after, int) and retry_after >= 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.05)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        time.sleep(0.06)
        assert breaker.allow() == (True, None)  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()[0]
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()[0]

    def test_as_dict_reports_the_retry_window_when_open(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=60.0)
        snapshot = breaker.as_dict()
        assert snapshot["state"] == "closed"
        assert "retry_after_seconds" not in snapshot
        breaker.record_failure()
        snapshot = breaker.as_dict()
        assert snapshot["state"] == "open"
        assert 0.0 < snapshot["retry_after_seconds"] <= 60.0
        assert snapshot["failure_threshold"] == 1

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"reset_seconds": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


# --------------------------------------------------------------------------- #
# Deadline-bounded exact extraction -> degraded approximate answers
# --------------------------------------------------------------------------- #
class TestDegradedAnswers:
    def test_slow_exact_extraction_degrades_within_the_deadline(
            self, trained_system):
        service = SelectionService(trained_system,
                                   exact_deadline_seconds=0.05)
        core = RequestCore(ModelRouter({"default": service}))
        install_plan(FaultPlan.parse(
            "serving.resolve_properties:delay:1:0.8"))
        try:
            response = core.handle("POST", "/v1/select",
                                   body=_graph_payload(seed=41))
            assert response.status == 200
            assert response.payload["degraded"] is True
            extraction = response.payload["properties_extraction"]
            assert extraction["deadline_exceeded"] is True
            assert extraction["deadline_seconds"] == 0.05
            assert response.payload["selected"] in PARTITIONERS
            assert service.stats.degraded >= 1
        finally:
            service.stop()

    def test_fast_extraction_is_not_degraded(self, trained_system):
        service = SelectionService(trained_system,
                                   exact_deadline_seconds=30.0)
        core = RequestCore(ModelRouter({"default": service}))
        try:
            response = core.handle("POST", "/v1/select",
                                   body=_graph_payload(seed=42))
            assert response.status == 200
            assert "degraded" not in response.payload
            assert service.stats.degraded == 0
        finally:
            service.stop()

    def test_approximate_requests_bypass_the_deadline_machinery(
            self, trained_system):
        service = SelectionService(trained_system,
                                   exact_deadline_seconds=0.05)
        core = RequestCore(ModelRouter({"default": service}))
        install_plan(FaultPlan.parse(
            "serving.resolve_properties:delay:1:0.2"))
        try:
            response = core.handle(
                "POST", "/v1/select",
                body=_graph_payload(seed=43, properties_mode="approximate"))
            assert response.status == 200
            assert "degraded" not in response.payload
            assert service.stats.degraded == 0
        finally:
            service.stop()

    def test_health_reports_the_deadline_and_breaker(self, trained_system):
        service = SelectionService(trained_system,
                                   exact_deadline_seconds=0.25)
        try:
            health = service.health()
            assert health["exact_deadline_seconds"] == 0.25
            assert health["breaker"]["state"] == "closed"
        finally:
            service.stop()


# --------------------------------------------------------------------------- #
# Breaker wired through the request core
# --------------------------------------------------------------------------- #
class TestBreakerIntegration:
    def _core(self, trained_system, **kwargs):
        service = SelectionService(trained_system, **kwargs)
        return service, RequestCore(ModelRouter({"default": service}))

    def test_repeated_internal_errors_open_the_breaker(self, trained_system):
        service, core = self._core(trained_system, breaker_threshold=3,
                                   breaker_reset_seconds=60.0)
        install_plan(FaultPlan.parse("serving.resolve_properties:error:*"))
        try:
            statuses = []
            for seed in range(6):
                response = core.handle("POST", "/v1/select",
                                       body=_graph_payload(seed=50 + seed))
                statuses.append(response.status)
            assert statuses == [500, 500, 500, 503, 503, 503]
            tripped = core.handle("POST", "/v1/select",
                                  body=_graph_payload(seed=60))
            assert dict(tripped.headers)["Retry-After"].isdigit()
            assert tripped.payload["breaker"]["state"] == "open"
            assert tripped.payload["retry_after"] >= 1
            assert "circuit breaker is open" in tripped.payload["error"]
        finally:
            service.stop()

    def test_breaker_recovers_after_the_reset_window(self, trained_system):
        service, core = self._core(trained_system, breaker_threshold=1,
                                   breaker_reset_seconds=0.05)
        install_plan(FaultPlan.parse("serving.resolve_properties:error:1"))
        try:
            assert core.handle("POST", "/v1/select",
                               body=_graph_payload(seed=70)).status == 500
            assert service.breaker.state == CircuitBreaker.OPEN
            assert core.handle("POST", "/v1/select",
                               body=_graph_payload(seed=71)).status == 503
            time.sleep(0.06)
            # The half-open probe succeeds (the one-shot fault already
            # fired) and closes the breaker.
            response = core.handle("POST", "/v1/select",
                                   body=_graph_payload(seed=72))
            assert response.status == 200
            assert service.breaker.state == CircuitBreaker.CLOSED
        finally:
            service.stop()

    def test_bad_requests_do_not_trip_the_breaker(self, trained_system):
        service, core = self._core(trained_system, breaker_threshold=1)
        try:
            response = core.handle("POST", "/v1/select",
                                   body={"algorithm": "pagerank"})
            assert response.status == 400
            assert service.breaker.state == CircuitBreaker.CLOSED
        finally:
            service.stop()

    def test_metrics_expose_breaker_state_and_transitions(
            self, trained_system):
        service, core = self._core(trained_system, breaker_threshold=1,
                                   breaker_reset_seconds=60.0)
        install_plan(FaultPlan.parse("serving.resolve_properties:error:1"))
        try:
            core.handle("POST", "/v1/select", body=_graph_payload(seed=80))
            text = core.handle("GET", "/metrics").text
            assert "serving_breaker_open" in text
            assert 'serving_breaker_transitions_total{' in text
            assert f'service="{service.breaker.instance}",state="open"' \
                in text
            assert "serving_degraded_total" in text
        finally:
            service.stop()


# --------------------------------------------------------------------------- #
# Client retry edge cases (no sockets: _request_once is stubbed)
# --------------------------------------------------------------------------- #
class TestClientRetryEdgeCases:
    def _scripted_client(self, responses, retries):
        """A client whose transport replays ``responses`` (exceptions are
        raised, everything else returned)."""
        client = SelectionClient("http://unused", retries=retries)
        calls = []
        sleeps = []

        def fake_request_once(path, payload):
            calls.append(path)
            outcome = responses[min(len(calls) - 1, len(responses) - 1)]
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._request_once = fake_request_once
        client._sleep = sleeps.append
        return client, calls, sleeps

    @staticmethod
    def _error(status, retry_after=None):
        error = SelectionServiceError(status, f"status {status}")
        error.retry_after = retry_after
        return error

    def test_503_with_retry_after_is_retried_with_jitter(self):
        client, calls, sleeps = self._scripted_client(
            [self._error(503, "2"), self._error(503, "2"), {"ok": True}],
            retries=3)
        assert client.health() == {"ok": True}
        assert len(calls) == 3
        # jittered within [hint/2, hint]
        assert all(1.0 <= s <= 2.0 for s in sleeps)

    def test_429_without_retry_after_backs_off_exponentially(self):
        client, calls, sleeps = self._scripted_client(
            [self._error(429), self._error(429), {"ok": True}], retries=2)
        assert client.health() == {"ok": True}
        assert len(sleeps) == 2
        # attempt 0: base 0.1s, attempt 1: base 0.2s, both jittered to
        # [base/2, base]
        assert 0.05 <= sleeps[0] <= 0.1
        assert 0.1 <= sleeps[1] <= 0.2

    def test_malformed_retry_after_falls_back_to_backoff(self):
        client, calls, sleeps = self._scripted_client(
            [self._error(503, "soon"), {"ok": True}], retries=1)
        assert client.health() == {"ok": True}
        assert 0.05 <= sleeps[0] <= 0.1

    def test_retries_exhausted_surfaces_the_last_error(self):
        client, calls, sleeps = self._scripted_client(
            [self._error(503, "1")], retries=2)
        with pytest.raises(SelectionServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 503
        assert len(calls) == 3  # initial + 2 retries
        assert len(sleeps) == 2

    def test_non_retryable_statuses_surface_immediately(self):
        client, calls, sleeps = self._scripted_client(
            [self._error(400), {"ok": True}], retries=5)
        with pytest.raises(SelectionServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 400
        assert calls == ["/healthz"]
        assert sleeps == []

    def test_retry_wait_is_capped(self):
        client = SelectionClient("http://unused", retries=1,
                                 max_retry_wait=0.5)
        wait = client._retry_wait(self._error(503, "3600"), 0, "3600")
        assert wait == 0.5
