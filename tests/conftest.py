"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.generators import generate_rmat, generate_realworld_graph


@pytest.fixture(scope="session")
def small_rmat_graph() -> Graph:
    """A small, skewed R-MAT graph reused across test modules."""
    return generate_rmat(256, 2000, seed=3)


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A hand-constructed graph with known structure.

    Vertices 0-5; a triangle 0-1-2 (directed cycle), a chain 2->3->4 and an
    isolated-ish vertex 5 receiving one edge from 0.
    """
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (0, 5)]
    return Graph.from_edges(edges, num_vertices=6, name="tiny")


@pytest.fixture(scope="session")
def social_graph() -> Graph:
    """A small social-type graph (high clustering, skewed degrees)."""
    return generate_realworld_graph("soc", 300, 2400, seed=5)
