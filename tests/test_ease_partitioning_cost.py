"""Tests for the partitioning run-time cost model."""

import numpy as np
import pytest

from repro.generators import generate_rmat
from repro.ease import PartitioningCostModel, measure_wall_clock_partitioning_time
from repro.partitioning import ALL_PARTITIONER_NAMES


@pytest.fixture(scope="module")
def graph():
    return generate_rmat(512, 5000, seed=4)


class TestPartitioningCostModel:
    def test_all_partitioners_have_a_cost(self, graph):
        model = PartitioningCostModel()
        for name in ALL_PARTITIONER_NAMES:
            assert model.estimate_seconds(graph, name, 8) > 0

    def test_unknown_partitioner_raises(self, graph):
        with pytest.raises(ValueError):
            PartitioningCostModel().estimate_seconds(graph, "metis", 8)

    def test_invalid_partition_count_raises(self, graph):
        with pytest.raises(ValueError):
            PartitioningCostModel().estimate_seconds(graph, "ne", 0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            PartitioningCostModel(noise=-0.1)

    def test_category_ordering_matches_paper(self, graph):
        """Figure 1: stateless < stateful streaming < hybrid < in-memory."""
        model = PartitioningCostModel(noise=0.0)
        seconds = {name: model.estimate_seconds(graph, name, 8)
                   for name in ALL_PARTITIONER_NAMES}
        assert seconds["2d"] < seconds["hdrf"]
        assert seconds["hdrf"] < seconds["hep100"]
        assert seconds["2ps"] < seconds["ne"]
        assert seconds["hep100"] <= seconds["ne"]
        assert seconds["hep1"] <= seconds["hep100"]

    def test_cost_scales_with_graph_size(self):
        model = PartitioningCostModel(noise=0.0)
        small = generate_rmat(256, 2000, seed=1)
        large = generate_rmat(256, 20000, seed=1)
        for name in ("2d", "ne", "hep10"):
            assert (model.estimate_seconds(large, name, 8)
                    > 5 * model.estimate_seconds(small, name, 8))

    def test_deterministic(self, graph):
        model = PartitioningCostModel()
        a = model.estimate_seconds(graph, "ne", 8)
        b = PartitioningCostModel().estimate_seconds(graph, "ne", 8)
        assert a == b

    def test_hdrf_cost_grows_with_partition_count(self, graph):
        model = PartitioningCostModel(noise=0.0)
        assert (model.estimate_seconds(graph, "hdrf", 64)
                > model.estimate_seconds(graph, "hdrf", 4))

    def test_hep_in_memory_fraction_monotone_in_tau(self, graph):
        low = PartitioningCostModel._hep_in_memory_fraction(graph, 1.0)
        high = PartitioningCostModel._hep_in_memory_fraction(graph, 100.0)
        assert 0.0 <= low <= high <= 1.0


class TestWallClockMeasurement:
    def test_returns_positive_time(self, graph):
        seconds = measure_wall_clock_partitioning_time(graph, "2d", 4)
        assert seconds > 0
